package memsys

import (
	"fmt"

	"hmtx/internal/obs"
)

// SetTracer installs the event tracer (nil disables tracing). Every emit site
// in this package is behind an Enabled guard, so a nil tracer costs one
// predictable branch per site (enforced by the tracegate analyzer).
func (h *Hierarchy) SetTracer(t *obs.Tracer) { h.tracer = t }

// Tracer returns the installed tracer (possibly nil).
func (h *Hierarchy) Tracer() *obs.Tracer { return h.tracer }

// latencyBounds buckets operation latencies: an L1 hit, a bus transfer, an
// L2 hit, a memory round trip, and everything slower.
var latencyBounds = []uint64{4, 16, 64, 256, 1024}

// Register mounts the hierarchy's statistics under prefix in r:
// per-cache hit counters, every Stats field, derived hit-rate scalars, and
// load/store latency histograms (which only fill while registered).
func (h *Hierarchy) Register(r *obs.Registry, prefix string) {
	g := r.Group(prefix)
	for i, l1 := range h.l1s {
		l1 := l1
		g.Group(fmt.Sprintf("l1[%d]", i)).CounterFunc("hits", "requests served by this L1", func() uint64 { return l1.hits })
	}
	g.Group("l2").CounterFunc("hits", "requests served by the shared L2", func() uint64 { return h.l2.hits })

	s := &h.stats
	g.CounterFunc("l1_hits", "requests served by the local L1", func() uint64 { return s.L1Hits })
	g.CounterFunc("peer_transfers", "requests served by a peer L1 over the bus", func() uint64 { return s.PeerTransfers })
	g.CounterFunc("l2_hits", "requests served by the shared L2", func() uint64 { return s.L2Hits })
	g.CounterFunc("mem_reads", "line fills from main memory", func() uint64 { return s.MemReads })
	g.CounterFunc("mem_writes", "line writebacks to main memory", func() uint64 { return s.MemWrites })
	g.CounterFunc("bus_messages", "broadcast requests on the L1-L2 bus", func() uint64 { return s.BusMessages })
	g.CounterFunc("spec_loads", "speculative loads executed (correct path)", func() uint64 { return s.SpecLoads })
	g.CounterFunc("spec_stores", "speculative stores executed", func() uint64 { return s.SpecStores })
	g.CounterFunc("wrong_path_loads", "squashed branch-speculative loads (§5.1)", func() uint64 { return s.WrongPathLoads })
	g.CounterFunc("versions_created", "new speculative line versions created", func() uint64 { return s.VersionsCreated })
	g.CounterFunc("slas_sent", "speculative load acknowledgments sent (§5.1)", func() uint64 { return s.SLAsSent })
	g.CounterFunc("avoided_aborts", "false misspeculations avoided by SLAs (Table 1)", func() uint64 { return s.AvoidedAborts })
	g.CounterFunc("so_writebacks", "non-speculative S-O lines overflowed to memory (§5.4)", func() uint64 { return s.SOWritebacks })
	g.CounterFunc("overflow_aborts", "aborts forced by speculative LLC overflow (§5.4)", func() uint64 { return s.OverflowAborts })
	g.CounterFunc("forced_evicts", "evictions injected by Hierarchy.Evict (model checker)", func() uint64 { return s.ForcedEvicts })
	g.CounterFunc("commits", "transaction group commits (LC VID advances)", func() uint64 { return s.Commits })
	g.CounterFunc("aborts", "abort sweeps", func() uint64 { return s.Aborts })
	g.CounterFunc("vid_resets", "VID epoch resets (§4.6)", func() uint64 { return s.VIDResets })

	g.Scalar("l1_hit_rate", "fraction of requests served by the local L1", func() float64 {
		total := s.L1Hits + s.PeerTransfers + s.L2Hits + s.MemReads
		return float64(s.L1Hits) / float64(total)
	})

	h.histLoadLat = g.Histogram("load_latency", "load latency in cycles", latencyBounds)
	h.histStoreLat = g.Histogram("store_latency", "store latency in cycles", latencyBounds)
}

// AddObsHistCkpts adds the hierarchy's registry-histogram state to dst under
// prefix, for hmtx-ckpt/v1 checkpoints (DESIGN.md §18). A no-op when no
// registry is attached.
func (h *Hierarchy) AddObsHistCkpts(prefix string, dst map[string]obs.HistCkpt) {
	if h.histLoadLat == nil {
		return
	}
	dst[prefix+"load_latency"] = h.histLoadLat.Ckpt()
	dst[prefix+"store_latency"] = h.histStoreLat.Ckpt()
}

// RestoreObsHistCkpts restores the hierarchy's registry-histogram state from
// a checkpoint. Register must have been called first.
func (h *Hierarchy) RestoreObsHistCkpts(prefix string, src map[string]obs.HistCkpt) error {
	if h.histLoadLat == nil {
		return fmt.Errorf("memsys: RestoreObsHistCkpts before Register")
	}
	for _, e := range []struct {
		name string
		h    *obs.Histogram
	}{
		{"load_latency", h.histLoadLat},
		{"store_latency", h.histStoreLat},
	} {
		ck, ok := src[prefix+e.name]
		if !ok {
			return fmt.Errorf("memsys: checkpoint is missing histogram %s%s", prefix, e.name)
		}
		if err := e.h.RestoreCkpt(ck); err != nil {
			return err
		}
	}
	return nil
}
