package memsys

import (
	"fmt"
	"sort"
	"strings"

	"hmtx/internal/vid"
)

// MOESI-San: an optional global-invariant checker for the HMTX coherence
// protocol. When Config.Sanitize is set, every public protocol transaction
// (Load, WrongPathLoad, Store, SLA, AbortAll, PokeWord) is followed by an
// assertion pass over the lines the operation touched; AbortAll additionally
// verifies the entire hierarchy. A violation panics with an
// *InvariantViolation carrying a full hierarchy dump.
//
// The checker is purely observational: it reads raw cache frames and settles
// *copies* of them against the current (epoch, LC) registers. It never
// settles a resident line, so enabling it cannot change victim selection,
// eviction order, latencies or statistics — a sanitized run is
// cycle-identical to an unsanitized one.
//
// The invariants asserted, with their paper sources (see DESIGN.md for the
// full list):
//
//  1. Structural (§4.1): tags are line-aligned and map to the frame's set;
//     states are in range; LRU stamps never exceed the cache's LRU clock and
//     are unique within a set; no two frames of one set hold the same
//     (tag, modVID, speculative?) version — insert must have merged them.
//  2. Settling (§4.6, §5.3): after settling against (epoch, LC), no line
//     belongs to a stale epoch or carries a pending commit; a line from a
//     committed epoch is never still speculative.
//  3. VID ranges (§4.1): Mod <= High on every speculative line; S-E has
//     Mod == 0; non-speculative lines have Mod == High == 0; High is at
//     most maxVID for latest versions and maxVID+1 for superseded ones
//     (the S-S re-snoop bound).
//  4. Version uniqueness (§4.1, §4.2): at most one latest version (S-M or
//     S-E) of a line exists anywhere; owning versions with the same modVID
//     are legal only as §5.4-reconstituted S-O(0,·) duplicates holding
//     byte-identical committed data.
//  5. Non-overlap (§4.1): sorting a line's owning versions by modVID, every
//     non-final version is superseded (S-O) with High at most the next
//     version's modVID, and the final one is the latest (S-M/S-E) — version
//     ranges never overlap across caches.
//  6. Dirty-owner uniqueness (§4.2): at most one M or E copy of a line, and
//     it coexists with no other non-speculative copy; speculative owners
//     never coexist with non-speculative copies. (Multiple O copies with
//     identical data are tolerated: a §5.4 S-O(0,·) reconstitution followed
//     by an abort legally restores Owned in two caches.)
//  7. Data identity (§4.1): all non-speculative copies of a line are
//     byte-identical, and match memory when none is dirty; every serveable
//     S-S copy is byte-identical to its same-modVID owner, or — when the
//     owner was legally written back to memory (§5.4) — to memory itself.
//  8. Snoop-filter coverage (DESIGN.md §11): every cache holding a valid
//     frame of a line has its presence bit set in the hierarchy's snoop
//     filter — the filter is a conservative superset, so it can never mask
//     a real copy from a bus snoop or protocol sweep. (Stale set bits are
//     legal; they cost a wasted visit, never correctness.)
type sanitizer struct {
	// touched accumulates the line addresses the current operation moved,
	// marked or evicted, in first-touch order (deterministic).
	touched []Addr
	seen    map[Addr]struct{}
	// muted suppresses checks between a §5.4 speculative overflow (which
	// deliberately tears the version chain: the evicted line is dropped
	// and an abort is forced) and the AbortAll that repairs it.
	muted bool
}

// InvariantViolation describes a failed MOESI-San assertion.
type InvariantViolation struct {
	// Addr is the line address the violated invariant concerns (0 for
	// set-structural violations, where Msg names cache and set).
	Addr Addr
	// Msg states the violated invariant.
	Msg string
	// Dump is the full hierarchy state at the time of the violation.
	Dump string
}

func (e *InvariantViolation) Error() string {
	return fmt.Sprintf("memsys: MOESI-San: line %#x: %s\n%s", e.Addr, e.Msg, e.Dump)
}

// sanBegin starts a new per-operation touch set rooted at addr.
func (h *Hierarchy) sanBegin(addr Addr) {
	if !h.cfg.Sanitize {
		return
	}
	h.san.touched = h.san.touched[:0]
	if h.san.seen == nil {
		h.san.seen = make(map[Addr]struct{})
	} else {
		clear(h.san.seen)
	}
	h.sanTouch(LineAddr(addr))
}

// sanTouch records that the current operation affected lineAddr (evictions
// cascade to unrelated tags, so one operation can touch several lines).
func (h *Hierarchy) sanTouch(lineAddr Addr) {
	if !h.cfg.Sanitize {
		return
	}
	if _, ok := h.san.seen[lineAddr]; ok {
		return
	}
	h.san.seen[lineAddr] = struct{}{}
	h.san.touched = append(h.san.touched, lineAddr)
}

// sanCheck asserts the invariants for every line the operation touched,
// panicking on the first violation.
func (h *Hierarchy) sanCheck() {
	if !h.cfg.Sanitize || h.san.muted {
		return
	}
	for _, la := range h.san.touched {
		if err := h.checkLine(la); err != nil {
			panic(err)
		}
		for _, c := range h.allCaches() {
			if err := h.checkSet(c, c.setIndex(la)); err != nil {
				panic(err)
			}
		}
	}
}

// CheckInvariants verifies the whole hierarchy: every set of every cache
// structurally, and the cross-cache invariants for every resident line. It
// returns nil when all invariants hold. Tests may call it directly; AbortAll
// runs it automatically under Config.Sanitize.
func (h *Hierarchy) CheckInvariants() error {
	var tags []Addr
	seen := make(map[Addr]struct{})
	for _, c := range h.allCaches() {
		for si := range c.sets {
			if err := h.checkSet(c, si); err != nil {
				return err
			}
			set := c.sets[si]
			for wi := range set {
				if set[wi].St == Invalid {
					continue
				}
				if _, ok := seen[set[wi].Tag]; !ok {
					seen[set[wi].Tag] = struct{}{}
					tags = append(tags, set[wi].Tag)
				}
			}
		}
	}
	sort.Slice(tags, func(i, j int) bool { return tags[i] < tags[j] })
	for _, la := range tags {
		if err := h.checkLine(la); err != nil {
			return err
		}
	}
	return nil
}

func (h *Hierarchy) violation(la Addr, format string, args ...any) error {
	return &InvariantViolation{Addr: la, Msg: fmt.Sprintf(format, args...), Dump: h.String()}
}

// checkSet asserts the structural invariants of one cache set: tag/set
// consistency, state range, LRU sanity, and version uniqueness within the
// set.
func (h *Hierarchy) checkSet(c *cache, si int) error {
	set := c.sets[si]
	type verKey struct {
		tag  Addr
		mod  vid.V
		spec bool
	}
	vers := make(map[verKey]int)
	lrus := make(map[uint64]int)
	for wi := range set {
		ln := &set[wi]
		if ln.St > SpecShared {
			return h.violation(ln.Tag, "%s set %d way %d: state out of range: %d", c.name, si, wi, uint8(ln.St))
		}
		if ln.St == Invalid {
			continue
		}
		if ln.Tag%LineSize != 0 {
			return h.violation(ln.Tag, "%s set %d way %d: tag %#x not line-aligned", c.name, si, wi, ln.Tag)
		}
		if c.setIndex(ln.Tag) != si {
			return h.violation(ln.Tag, "%s set %d way %d: tag %#x belongs in set %d", c.name, si, wi, ln.Tag, c.setIndex(ln.Tag))
		}
		if ln.lru == 0 || ln.lru > c.lruClock {
			return h.violation(ln.Tag, "%s set %d way %d: LRU stamp %d outside (0, clock=%d]", c.name, si, wi, ln.lru, c.lruClock)
		}
		if prev, ok := lrus[ln.lru]; ok {
			return h.violation(ln.Tag, "%s set %d: ways %d and %d share LRU stamp %d", c.name, si, prev, wi, ln.lru)
		}
		lrus[ln.lru] = wi
		k := verKey{ln.Tag, ln.Mod, ln.St.Speculative()}
		if prev, ok := vers[k]; ok {
			return h.violation(ln.Tag, "%s set %d: ways %d and %d hold duplicate unmerged versions %v and %v of %#x",
				c.name, si, prev, wi, &set[prev], ln, ln.Tag)
		}
		vers[k] = wi
	}
	return nil
}

// sanView is one cache's settled view of a line for cross-cache checking.
type sanView struct {
	cache string
	view  Line // copy of the frame, settled against (epoch, LC)
}

func (v *sanView) String() string { return fmt.Sprintf("%s:%v", v.cache, &v.view) }

// lineViews gathers a settled copy of every resident version of la. The
// resident frames are not modified.
func (h *Hierarchy) lineViews(la Addr) []sanView {
	maxV := h.cfg.VIDSpace.Max()
	var out []sanView
	for _, c := range h.allCaches() {
		set := c.sets[c.setIndex(la)]
		for wi := range set {
			if set[wi].St == Invalid || set[wi].Tag != la {
				continue
			}
			cp := set[wi]
			cp.settle(h.epoch, h.lc, maxV)
			if cp.St == Invalid {
				continue // fully committed superseded version: not live state
			}
			out = append(out, sanView{cache: c.name, view: cp})
		}
	}
	return out
}

// checkFilter asserts invariant 8 for la: any cache holding a valid frame of
// the line must be covered by the snoop filter's presence mask.
func (h *Hierarchy) checkFilter(la Addr) error {
	mask := h.pres[la]
	for _, c := range h.all {
		if mask.has(c.id) {
			continue
		}
		set := c.sets[c.setIndex(la)]
		for wi := range set {
			if set[wi].St != Invalid && set[wi].Tag == la {
				return h.violation(la, "%s holds %v but its snoop-filter presence bit is clear (mask %v)",
					c.name, &set[wi], mask)
			}
		}
	}
	return nil
}

// checkLine asserts every cross-cache invariant for the line at la.
func (h *Hierarchy) checkLine(la Addr) error {
	if err := h.checkFilter(la); err != nil {
		return err
	}
	maxV := h.cfg.VIDSpace.Max()
	views := h.lineViews(la)

	// Per-view: settling and VID-range well-formedness (invariants 2, 3).
	for i := range views {
		v := &views[i]
		ln := &v.view
		if ln.Epoch != h.epoch || ln.SettledLC != h.lc {
			return h.violation(la, "%s: settled to (epoch=%d, lc=%d), hierarchy at (epoch=%d, lc=%d)",
				v, ln.Epoch, ln.SettledLC, h.epoch, h.lc)
		}
		if !ln.St.Speculative() {
			if ln.Mod != 0 || ln.High != 0 {
				return h.violation(la, "%s: non-speculative line carries VIDs", v)
			}
			continue
		}
		if ln.St == SpecExclusive && ln.Mod != 0 {
			return h.violation(la, "%s: S-E must have modVID 0", v)
		}
		if ln.Mod > ln.High {
			return h.violation(la, "%s: malformed version range: modVID > highVID", v)
		}
		if ln.Mod > maxV {
			return h.violation(la, "%s: modVID exceeds VID space max %d", v, maxV)
		}
		limit := maxV // latest versions track real accessors
		if ln.St.superseded() {
			limit = maxV + 1 // re-snoop/supersede bounds may be maxV+1
		}
		if ln.High > limit {
			return h.violation(la, "%s: highVID exceeds bound %d", v, limit)
		}
	}

	// findHit safety (§4.1): within one cache, the VID serve ranges of a
	// line's resident versions are disjoint — a non-speculative line
	// serves every VID, a latest version serves [Mod, ∞), a superseded
	// one [Mod, High). Overlap would make a hit ambiguous. (Across
	// caches, overlap is legal: e.g. duplicate §5.4 S-O(0,·) owners.)
	serveRange := func(ln *Line) (lo vid.V, hi vid.V, unbounded, serves bool) {
		switch {
		case !ln.St.Speculative():
			return 0, 0, true, true
		case ln.St.latest():
			return ln.Mod, 0, true, true
		default:
			return ln.Mod, ln.High, false, ln.Mod < ln.High
		}
	}
	for i := range views {
		for j := i + 1; j < len(views); j++ {
			v, w := &views[i], &views[j]
			if v.cache != w.cache {
				continue
			}
			vlo, vhi, vinf, vok := serveRange(&v.view)
			wlo, whi, winf, wok := serveRange(&w.view)
			if !vok || !wok {
				continue
			}
			if (vinf || wlo < vhi) && (winf || vlo < whi) {
				return h.violation(la, "serve ranges overlap within %s: %s and %s", v.cache, v, w)
			}
		}
	}

	// Partition the views.
	var nonSpec, owners, copies []*sanView
	for i := range views {
		v := &views[i]
		switch {
		case !v.view.St.Speculative():
			nonSpec = append(nonSpec, v)
		case v.view.St == SpecShared:
			copies = append(copies, v)
		default:
			owners = append(owners, v)
		}
	}

	// Invariant 6: exclusivity of ownership.
	if len(owners) > 0 && len(nonSpec) > 0 {
		return h.violation(la, "speculative owner %s coexists with non-speculative copy %s", owners[0], nonSpec[0])
	}
	exclusive := 0
	for _, v := range nonSpec {
		if v.view.St == Modified || v.view.St == Exclusive {
			exclusive++
		}
	}
	if exclusive > 0 && len(nonSpec) > 1 {
		return h.violation(la, "M/E copy coexists with other non-speculative copies: %s, %s", nonSpec[0], nonSpec[1])
	}

	// Invariant 7 for non-speculative copies: identical data, matching
	// memory when clean.
	dirty := false
	for _, v := range nonSpec {
		if v.view.Data != nonSpec[0].view.Data {
			return h.violation(la, "non-speculative copies diverge: %s vs %s", nonSpec[0], v)
		}
		if v.view.St.dirty() {
			dirty = true
		}
	}
	if len(nonSpec) > 0 && !dirty {
		if mem := h.mem.read(la); nonSpec[0].view.Data != mem {
			return h.violation(la, "clean copy %s does not match memory", nonSpec[0])
		}
	}

	// Invariants 4 and 5: version uniqueness and non-overlap among owners.
	sort.SliceStable(owners, func(i, j int) bool { return owners[i].view.Mod < owners[j].view.Mod })
	latest := 0
	for _, v := range owners {
		if v.view.St.latest() {
			latest++
		}
	}
	if latest > 1 {
		return h.violation(la, "multiple latest versions resident")
	}
	for i, v := range owners {
		// Same-modVID duplicates: only §5.4-reconstituted S-O(0,·).
		for _, w := range owners[i+1:] {
			if w.view.Mod != v.view.Mod {
				break
			}
			if v.view.Mod != 0 || v.view.St != SpecOwned || w.view.St != SpecOwned {
				return h.violation(la, "duplicate owners of version %d: %s and %s", v.view.Mod, v, w)
			}
			if v.view.Data != w.view.Data {
				return h.violation(la, "duplicate S-O(0,·) owners diverge: %s vs %s", v, w)
			}
		}
		// Against the next distinct version: superseded, bounded ranges.
		next := vid.V(0)
		for _, w := range owners[i+1:] {
			if w.view.Mod > v.view.Mod {
				next = w.view.Mod
				break
			}
		}
		if next == 0 {
			continue // v belongs to the highest version group
		}
		if v.view.St.latest() {
			return h.violation(la, "latest version %s below resident version %d", v, next)
		}
		if v.view.High > next {
			return h.violation(la, "version ranges overlap: %s spills past next version %d", v, next)
		}
	}
	if len(owners) > 0 && latest == 0 {
		return h.violation(la, "version chain has no latest version (top is %s)", owners[len(owners)-1])
	}

	// Invariant 7 for S-S copies: serveable copies mirror their owner, or
	// memory when the owner's committed copy was written back (§5.4).
	for _, v := range copies {
		if v.view.Mod >= v.view.High {
			continue // capped/empty range: never serves, stale data legal
		}
		var owner *sanView
		for _, o := range owners {
			if o.view.Mod == v.view.Mod {
				owner = o
				break
			}
		}
		switch {
		case owner != nil:
			if v.view.Data != owner.view.Data {
				return h.violation(la, "S-S copy %s diverges from owner %s", v, owner)
			}
		case v.view.Mod != 0:
			return h.violation(la, "serveable S-S copy %s has no resident owner", v)
		case len(nonSpec) > 0:
			// The owner settled to a non-speculative state (possibly
			// in another cache): the copy mirrors committed data.
			if v.view.Data != nonSpec[0].view.Data {
				return h.violation(la, "ownerless S-S copy %s diverges from committed copy %s", v, nonSpec[0])
			}
		default:
			// The owner's committed copy was written back (§5.4).
			if mem := h.mem.read(la); v.view.Data != mem {
				return h.violation(la, "ownerless S-S copy %s does not match memory", v)
			}
		}
	}
	return nil
}

// String renders every valid line in the hierarchy (plus the coherence
// registers), the dump attached to sanitizer violation reports.
func (h *Hierarchy) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hierarchy{epoch=%d lc=%d overflow=%v}\n", h.epoch, h.lc, h.pendingOverflow)
	for _, c := range h.allCaches() {
		n := 0
		for si := range c.sets {
			set := c.sets[si]
			for wi := range set {
				if set[wi].St != Invalid {
					n++
				}
			}
		}
		fmt.Fprintf(&b, "  %s: %d valid lines (lruClock=%d)\n", c.name, n, c.lruClock)
		for si := range c.sets {
			set := c.sets[si]
			for wi := range set {
				ln := &set[wi]
				if ln.St == Invalid {
					continue
				}
				fmt.Fprintf(&b, "    set %4d way %2d: %#10x %-9s epoch=%d slc=%d shadow=(%d,%d) lru=%d\n",
					si, wi, ln.Tag, ln.String(), ln.Epoch, ln.SettledLC, ln.ShadowHigh, ln.ShadowEpoch, ln.lru)
			}
		}
	}
	fmt.Fprintf(&b, "  memory: %d lines resident\n", len(h.mem.lines))
	return b.String()
}
