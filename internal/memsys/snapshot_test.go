package memsys

import (
	"bytes"
	"testing"
)

// snapAddrB is a second line, in a different set from addrA.
const snapAddrB = addrA + 4096

// snapAddrs is the memory scope the snapshot tests fingerprint over.
var snapAddrs = []Addr{addrA, snapAddrB}

// buildSnapState drives a hierarchy into a mixed configuration: committed
// dirty data, a speculative version chain (superseded S-M plus latest S-M),
// a remote S-S copy, and unrelated clean residency.
func buildSnapState(t *testing.T) *Hierarchy {
	t.Helper()
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 10, 0)     // non-spec dirty M in L1.0
	mustLoad(t, h, 1, addrA, 1)          // migrate to L1.1, speculative read
	mustStore(t, h, 1, addrA, 11, 1)     // S-M(1,·) in L1.1
	mustStore(t, h, 1, addrA, 12, 2)     // re-store: S-M(1,2) + S-M(2,·) chain
	mustLoad(t, h, 0, addrA, 1)          // S-S copy of version 1 back in L1.0
	mustStore(t, h, 0, snapAddrB, 20, 0) // unrelated line
	return h
}

// TestCloneIndependence: a clone shares no mutable state — mutating the clone
// leaves the original's canonical encoding untouched, and both evolve
// identically from the fork point under the same stimuli.
func TestCloneIndependence(t *testing.T) {
	h := buildSnapState(t)
	before := h.AppendCanonical(nil, snapAddrs)

	c := h.Clone()
	if !bytes.Equal(before, c.AppendCanonical(nil, snapAddrs)) {
		t.Fatal("clone does not canonicalize identically to its original")
	}

	mustStore(t, c, 0, addrA, 99, 2)
	c.Commit(1)
	c.AbortAll()
	if !bytes.Equal(before, h.AppendCanonical(nil, snapAddrs)) {
		t.Fatal("mutating the clone changed the original")
	}

	// Same stimuli applied to both sides of the fork must stay in lockstep.
	c2 := h.Clone()
	h.Commit(1)
	mustLoad(t, h, 1, addrA, 2)
	c2.Commit(1)
	mustLoad(t, c2, 1, addrA, 2)
	if h.Fingerprint(snapAddrs) != c2.Fingerprint(snapAddrs) {
		t.Fatal("original and clone diverged under identical stimuli")
	}
	if err := c2.CheckInvariants(); err != nil {
		t.Fatalf("clone violates invariants: %v", err)
	}
}

// TestFingerprintWayPermutation: physically permuting the ways of a set (and
// translating the LRU stamps while preserving their relative order) is
// unobservable, so the fingerprint must not move.
func TestFingerprintWayPermutation(t *testing.T) {
	h := buildSnapState(t)
	fp := h.Fingerprint(snapAddrs)

	for _, c := range h.all {
		for si := range c.sets {
			s := c.sets[si]
			for l, r := 0, len(s)-1; l < r; l, r = l+1, r-1 {
				s[l], s[r] = s[r], s[l]
			}
		}
	}
	if h.Fingerprint(snapAddrs) != fp {
		t.Fatal("way permutation changed the fingerprint")
	}

	// Rescale LRU stamps: double every stamp, preserving within-set order.
	for _, c := range h.all {
		for si := range c.sets {
			s := c.sets[si]
			for i := range s {
				s[i].lru *= 2
			}
		}
	}
	for _, c := range h.all {
		c.lruClock *= 2
	}
	if h.Fingerprint(snapAddrs) != fp {
		t.Fatal("order-preserving LRU rescale changed the fingerprint")
	}
}

// TestFingerprintCorePermutation: the checker's stimulus alphabet is
// core-symmetric, so swapping the entire contents of two L1s is quotiented
// away by the sorted per-L1 encoding.
func TestFingerprintCorePermutation(t *testing.T) {
	h := buildSnapState(t)
	fp := h.Fingerprint(snapAddrs)

	a, b := h.l1s[0], h.l1s[1]
	a.sets, b.sets = b.sets, a.sets
	a.setGen, b.setGen = b.setGen, a.setGen
	a.setTag, b.setTag = b.setTag, a.setTag
	if h.Fingerprint(snapAddrs) != fp {
		t.Fatal("core permutation changed the fingerprint")
	}
}

// TestFingerprintDistinct: semantically different states must not collapse.
// Each mutation below is observable through the protocol, so each must move
// the canonical encoding.
func TestFingerprintDistinct(t *testing.T) {
	base := buildSnapState(t)
	fp := base.Fingerprint(snapAddrs)

	mutations := []struct {
		name string
		mut  func(*Hierarchy)
	}{
		{"data byte", func(h *Hierarchy) {
			h.l1s[1].sets[h.l1s[1].setIndex(addrA)][0].Data[0] ^= 0xff
		}},
		{"version range", func(h *Hierarchy) {
			s := h.l1s[1].sets[h.l1s[1].setIndex(addrA)]
			for i := range s {
				if s[i].St.Speculative() && s[i].St.superseded() {
					s[i].High++
					return
				}
			}
			t.Fatal("no superseded version found to mutate")
		}},
		{"lru order", func(h *Hierarchy) {
			// Swapping the recency of two valid lines in one set changes
			// the next victim, which is observable under capacity pressure.
			s := h.l1s[1].sets[h.l1s[1].setIndex(addrA)]
			var valid []*Line
			for i := range s {
				if s[i].St != Invalid {
					valid = append(valid, &s[i])
				}
			}
			if len(valid) < 2 {
				t.Fatal("need two valid lines to swap recency")
			}
			valid[0].lru, valid[1].lru = valid[1].lru, valid[0].lru
		}},
		{"committed memory", func(h *Hierarchy) {
			d := h.mem.read(LineAddr(snapAddrB))
			d[0] ^= 0xff
			h.mem.write(LineAddr(snapAddrB), d)
		}},
		{"lc register", func(h *Hierarchy) {
			h.lc++
		}},
	}
	for _, m := range mutations {
		h := buildSnapState(t)
		m.mut(h)
		if h.Fingerprint(snapAddrs) == fp {
			t.Errorf("%s mutation did not change the fingerprint", m.name)
		}
	}
}

// TestCloneDropsObservers: clones must not inherit trackers, tracers or
// histogram sinks — checker edges would otherwise emit events.
func TestCloneDropsObservers(t *testing.T) {
	h := buildSnapState(t)
	c := h.Clone()
	if c.tracker != nil || c.tracer != nil || c.histLoadLat != nil || c.histStoreLat != nil {
		t.Fatal("clone carried observers over")
	}
}
