package memsys

// memory is the simulated main memory: a sparse map of 64-byte lines.
// Absent lines read as zero, matching demand-zeroed pages. Lines are stored
// by value so that cloning the map (snapshot.go) shares no backing storage.
type memory struct {
	lines map[Addr][LineSize]byte
}

func newMemory() *memory { return &memory{lines: make(map[Addr][LineSize]byte)} }

func (m *memory) read(lineAddr Addr) [LineSize]byte {
	return m.lines[lineAddr]
}

func (m *memory) write(lineAddr Addr, data [LineSize]byte) {
	m.lines[lineAddr] = data
}

func (m *memory) word(addr Addr) uint64 {
	la := LineAddr(addr)
	p, ok := m.lines[la]
	if !ok {
		return 0
	}
	off := addr - la
	var v uint64
	for i := 0; i < WordSize; i++ {
		v |= uint64(p[off+Addr(i)]) << (8 * i)
	}
	return v
}

func (m *memory) setWord(addr Addr, val uint64) {
	la := LineAddr(addr)
	p := m.lines[la]
	off := addr - la
	for i := 0; i < WordSize; i++ {
		p[off+Addr(i)] = byte(val >> (8 * i))
	}
	m.lines[la] = p
}
