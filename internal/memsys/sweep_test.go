package memsys

import "testing"

// TestSeqSemanticsSweep runs the sequential-semantics property over a fixed
// block of seeds (a development-time sweep of 3000 seeds passed; this keeps
// a representative slice in the suite).
func TestSeqSemanticsSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	f := seqSemanticsProp(t)
	for seed := int64(0); seed < 200; seed++ {
		if !f(seed) {
			t.Fatalf("failing seed: %d", seed)
		}
	}
}
