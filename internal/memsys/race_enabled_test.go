//go:build race

package memsys

// raceEnabled mirrors the -race build tag for tests. The race runtime
// instruments memory accesses with shadow allocations that
// testing.AllocsPerRun cannot tell from real ones, so zero-alloc assertions
// only hold in non-race runs; the race job still executes everything else.
const raceEnabled = true
