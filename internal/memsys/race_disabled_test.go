//go:build !race

package memsys

// raceEnabled mirrors the -race build tag for tests; see race_enabled_test.go.
const raceEnabled = false
