package memsys

import "hmtx/internal/prof"

// SetProf installs the cycle-attribution profiler's collector (nil disables
// profiling). The hierarchy feeds it the contention heatmap — per-line
// conflict aborts, overflow aborts and peer transfers — while the engine,
// which owns simulated time, charges the latency buckets using Result.Src.
// Every emit site in this package is behind an Enabled guard (enforced by
// the profgate analyzer), so the disabled path costs one predictable branch
// per site.
func (h *Hierarchy) SetProf(p *prof.Collector) { h.prof = p }

// Prof returns the installed collector (possibly nil).
func (h *Hierarchy) Prof() *prof.Collector { return h.prof }
