package memsys

import "reflect"

// Stats aggregates memory-system event counts for one simulation.
type Stats struct {
	// Hit/miss accounting.
	L1Hits        uint64 // requests served by the local L1
	PeerTransfers uint64 // requests served by a peer L1 over the bus
	L2Hits        uint64 // requests served by the shared L2
	MemReads      uint64 // line fills from main memory
	MemWrites     uint64 // line writebacks to main memory
	BusMessages   uint64 // broadcast requests on the L1-L2 bus

	// Speculative accesses (§4.2).
	SpecLoads       uint64 // speculative loads executed (correct path)
	SpecStores      uint64 // speculative stores executed
	WrongPathLoads  uint64 // squashed branch-speculative loads (§5.1)
	VersionsCreated uint64 // new speculative line versions created

	// SLA accounting (§5.1, Table 1).
	SLAsSent      uint64 // loads that required a speculative load acknowledgment
	AvoidedAborts uint64 // false misspeculations avoided thanks to SLAs

	// Overflow handling (§5.4).
	SOWritebacks   uint64 // non-speculative S-O lines legally overflowed to memory
	OverflowAborts uint64 // aborts forced by speculative lines leaving the LLC
	ForcedEvicts   uint64 // evictions injected by Hierarchy.Evict (model checker)

	// Transaction lifecycle.
	Commits   uint64
	Aborts    uint64
	VIDResets uint64 // §4.6
}

// Add accumulates other into s field by field, so multi-run aggregation
// (experiments, sharded runs) does not open-code the sums. Every Stats field
// must be a uint64; Add checks this at run time via reflection so a future
// field of another type fails loudly instead of being silently skipped.
func (s *Stats) Add(other *Stats) {
	sv := reflect.ValueOf(s).Elem()
	ov := reflect.ValueOf(other).Elem()
	for i := 0; i < sv.NumField(); i++ {
		f := sv.Field(i)
		if f.Kind() != reflect.Uint64 {
			panic("memsys: Stats." + sv.Type().Field(i).Name + " is not a uint64; update Stats.Add")
		}
		f.SetUint(f.Uint() + ov.Field(i).Uint())
	}
}

// Tracker receives callbacks about per-transaction speculative activity. The
// engine uses it to maintain read/write sets (Figure 9) and per-transaction
// statistics (Table 1). A nil Tracker disables tracking.
type Tracker interface {
	// SpecTouch records that the transaction currently running on core
	// speculatively accessed lineAddr (isStore selects the write set) and
	// reports whether that transaction had already logged an access to
	// the line — in which case no SLA needs to be sent (§5.1).
	SpecTouch(core int, lineAddr Addr, isStore bool) (already bool)
	// WrongPath records a squashed wrong-path load by core.
	WrongPath(core int, lineAddr Addr)
	// AvoidedAbort records that, without SLAs, a wrong-path mark would
	// have caused a false misspeculation on this store (Table 1).
	AvoidedAbort(core int)
}
