package memsys

import (
	"fmt"

	"hmtx/internal/vid"
)

// State is a cache line coherence state: the five MOESI states plus the four
// speculative states added by HMTX (§4.1).
type State uint8

// Coherence states. Modified/Owned are dirty, Exclusive/Shared clean;
// the Spec* states carry the (modVID, highVID) pair described in §4.1.
const (
	Invalid State = iota
	Modified
	Owned
	Exclusive
	Shared
	SpecModified  // S-M: latest speculative version, dirty on commit
	SpecOwned     // S-O: superseded speculative version, kept for lower VIDs
	SpecExclusive // S-E: latest version, clean; modVID is always 0
	SpecShared    // S-S: read-only copy of a version in another cache
)

var stateNames = [...]string{"I", "M", "O", "E", "S", "S-M", "S-O", "S-E", "S-S"}

func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Speculative reports whether s is one of the four HMTX speculative states.
func (s State) Speculative() bool { return s >= SpecModified }

// dirty reports whether the line must eventually reach memory.
func (s State) dirty() bool {
	return s == Modified || s == Owned || s == SpecModified || s == SpecOwned
}

// latest reports whether s holds the latest speculative version of a line
// (hit rule: request VID >= modVID).
func (s State) latest() bool { return s == SpecModified || s == SpecExclusive }

// superseded reports whether s holds a bounded old version
// (hit rule: modVID <= request VID < highVID).
func (s State) superseded() bool { return s == SpecOwned || s == SpecShared }

// Line is one physical cache line. A cache set may hold several Lines with
// the same Tag but different (Mod, High) version ranges (§4.1).
type Line struct {
	Tag  Addr  // line-aligned address
	St   State // coherence state
	Mod  vid.V // modVID: VID of the speculative store that created this version
	High vid.V // highVID: highest VID to have accessed this version

	// Epoch is the VID epoch the line's VIDs belong to; lines from
	// earlier epochs are fully committed and settle on next touch (§4.6).
	Epoch uint64
	// SettledLC is the LC VID this line was last settled against; a line
	// with SettledLC below the cache's LC VID has a pending lazy commit,
	// the equivalent of the Committed Bit of §5.3.
	SettledLC vid.V

	// ShadowHigh/ShadowEpoch track marks that *would* have been made by
	// squashed wrong-path loads if SLAs were not filtering them (§5.1).
	// They exist only to count the false misspeculations SLAs avoid
	// (Table 1); they never influence protocol behaviour when SLAs are
	// enabled.
	ShadowHigh  vid.V
	ShadowEpoch uint64

	Data [LineSize]byte

	lru uint64 // LRU timestamp maintained by the owning cache
}

// String renders the line as in the paper's figures, e.g. "S-M(2,2)".
func (l *Line) String() string {
	if l == nil {
		return "<nil line>"
	}
	return fmt.Sprintf("%s(%d,%d)", l.St, l.Mod, l.High)
}

// Word returns the 8-byte word at addr, which must fall inside the line.
func (l *Line) Word(addr Addr) uint64 {
	off := addr - l.Tag
	if addr%WordSize != 0 || off >= LineSize {
		panic(fmt.Sprintf("memsys: misaligned or out-of-line word read at %#x (line %#x)", addr, l.Tag))
	}
	var v uint64
	for i := 0; i < WordSize; i++ {
		v |= uint64(l.Data[off+Addr(i)]) << (8 * i)
	}
	return v
}

// SetWord stores the 8-byte word val at addr inside the line.
func (l *Line) SetWord(addr Addr, val uint64) {
	off := addr - l.Tag
	if addr%WordSize != 0 || off >= LineSize {
		panic(fmt.Sprintf("memsys: misaligned or out-of-line word write at %#x (line %#x)", addr, l.Tag))
	}
	for i := 0; i < WordSize; i++ {
		l.Data[off+Addr(i)] = byte(val >> (8 * i))
	}
}

// applyCommit performs the commit state transitions of Figure 6 for a commit
// of every VID up to and including lc. Lines whose highVID is at most lc are
// no longer speculative at all; lines whose modVID is at most lc hold
// committed data but remain marked by later readers.
func (l *Line) applyCommit(lc vid.V) {
	if !l.St.Speculative() {
		return
	}
	if l.High <= lc {
		switch l.St {
		case SpecModified:
			l.St = Modified
		case SpecExclusive:
			l.St = Exclusive
		case SpecOwned, SpecShared:
			l.St = Invalid
		}
		l.Mod, l.High = 0, 0
		return
	}
	if l.Mod != 0 && l.Mod <= lc {
		l.Mod = 0
	}
}

// applyAbort performs the abort state transitions of Figure 7: versions
// created by uncommitted speculative stores are invalidated; unmodified
// lines merely shed their speculative markings.
func (l *Line) applyAbort() {
	if !l.St.Speculative() {
		return
	}
	if l.Mod != 0 {
		l.St = Invalid
		l.Mod, l.High = 0, 0
		return
	}
	switch l.St {
	case SpecModified:
		l.St = Modified
	case SpecExclusive:
		l.St = Exclusive
	case SpecOwned:
		l.St = Owned
	case SpecShared:
		// An S-S copy's owner may revert to Modified/Exclusive, which
		// asserts there are no other copies; dropping the copy (always
		// safe) preserves the MOESI invariants.
		l.St = Invalid
	}
	l.Mod, l.High = 0, 0
}

// settle lazily applies any pending commit to the line (§5.3). Aborts are
// processed eagerly by the hierarchy, so only commit processing is deferred.
// epoch and lc are the hierarchy's current VID epoch and latest committed
// VID.
func (l *Line) settle(epoch uint64, lc vid.V, maxV vid.V) {
	if l.Epoch == epoch && l.SettledLC == lc {
		return // already settled against the current registers
	}
	if l.St == Invalid || !l.St.Speculative() {
		l.Epoch, l.SettledLC = epoch, lc
		return
	}
	if l.Epoch < epoch {
		// A VID Reset ended the line's epoch; a reset is only legal
		// once every transaction of the epoch has committed (§4.6),
		// so the line settles as fully committed. This must be
		// unconditional: S-S re-snoop bounds can reach maxV+1, which
		// a plain applyCommit(maxV) would mistake for a live marking.
		switch l.St {
		case SpecModified:
			l.St = Modified
		case SpecExclusive:
			l.St = Exclusive
		case SpecOwned, SpecShared:
			l.St = Invalid
		}
		l.Mod, l.High = 0, 0
		l.Epoch, l.SettledLC = epoch, lc
		l.ShadowHigh, l.ShadowEpoch = 0, 0
		return
	}
	if l.SettledLC < lc {
		l.applyCommit(lc)
		l.SettledLC = lc
	}
}

// shadow returns the line's effective wrong-path shadow mark for the given
// epoch, which decays to zero across VID resets.
func (l *Line) shadow(epoch uint64) vid.V {
	if l.ShadowEpoch != epoch {
		return 0
	}
	return l.ShadowHigh
}
