package memsys

import (
	"testing"

	"hmtx/internal/vid"
)

// TestConfigCoreCap pins the configuration boundary: 255 cores is the largest
// legal system (presence bits for 255 L1s plus the L2 fit the presMask, and
// the engine's event keys reserve 8 bits for the core id); 256 must panic.
func TestConfigCoreCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 255
	h := New(cfg)
	if got := len(h.all); got != 256 {
		t.Fatalf("255-core hierarchy has %d caches, want 256 (255 L1s + L2)", got)
	}

	defer func() {
		if recover() == nil {
			t.Fatal("Cores=256 did not panic")
		}
	}()
	cfg.Cores = 256
	New(cfg)
}

// TestPresMaskBoundaryBits exercises the presence bitset at every word
// boundary and at the highest id a 255-core system uses (the L2's bit, 255).
func TestPresMaskBoundaryBits(t *testing.T) {
	var m presMask
	if !m.empty() {
		t.Fatal("zero mask not empty")
	}
	for _, bit := range []int{0, 63, 64, 127, 128, 254, 255} {
		if m.has(bit) {
			t.Fatalf("bit %d set in fresh mask", bit)
		}
		m.set(bit)
		if !m.has(bit) {
			t.Fatalf("bit %d clear after set", bit)
		}
	}
	if m.empty() {
		t.Fatal("mask with bits set reports empty")
	}
	// Clearing one boundary bit must not disturb its neighbours across the
	// word seam.
	m.clear(64)
	if m.has(64) || !m.has(63) || !m.has(127) {
		t.Fatalf("clear(64) disturbed neighbours: %v", m)
	}
	for _, bit := range []int{0, 63, 127, 128, 254, 255} {
		m.clear(bit)
	}
	if !m.empty() {
		t.Fatalf("mask not empty after clearing all bits: %v", m)
	}
}

// TestTryLocalLoadAtCoreCap runs the parallel-round fast path on the last
// core of a maximal 255-core hierarchy: local hits must be served (presence
// bit 254 lives in the mask's fourth word), remote lines must be refused, and
// a snoop transfer from another high-id core must work so the line becomes
// locally servable afterwards.
func TestTryLocalLoadAtCoreCap(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cores = 255
	h := New(cfg)
	last := cfg.Cores - 1

	h.PokeWord(addrA, 7)
	mustLoad(t, h, last, addrA, vid.NonSpec)
	val, _, specHit, ok := h.TryLocalLoad(last, addrA, vid.NonSpec, false)
	if !ok || specHit || val != 7 {
		t.Fatalf("local hit on core %d: val=%d specHit=%v ok=%v, want 7,false,true", last, val, specHit, ok)
	}

	// The line is resident only in core 254's L1 (and the L2): every other
	// core's restricted path must refuse it rather than touch the bus.
	if _, _, _, ok := h.TryLocalLoad(0, addrA, vid.NonSpec, false); ok {
		t.Fatal("core 0 served a line resident in core 254's L1")
	}

	// A speculative store on core 200 moves ownership; core 254 must refuse
	// locally until a real (serial-path) load snoops the line back.
	const addrB = Addr(0x2000)
	mustStore(t, h, 200, addrB, 9, 1)
	if _, _, _, ok := h.TryLocalLoad(last, addrB, 1, false); ok {
		t.Fatal("core 254 served a line owned by core 200")
	}
	if v := mustLoad(t, h, last, addrB, 2); v != 9 {
		t.Fatalf("snoop transfer load: got %d, want 9", v)
	}
	val, _, specHit, ok = h.TryLocalLoad(last, addrB, 2, false)
	if !ok || !specHit || val != 9 {
		t.Fatalf("post-snoop local spec hit: val=%d specHit=%v ok=%v, want 9,true,true", val, specHit, ok)
	}

	// stampOnly serves only sets whose settle stamp is current: the hit above
	// stamped the set, a commit invalidates every stamp.
	if _, _, _, ok := h.TryLocalLoad(last, addrB, 2, true); !ok {
		t.Fatal("stampOnly refused a freshly stamped set")
	}
	h.Commit(1)
	if _, _, _, ok := h.TryLocalLoad(last, addrB, 2, true); ok {
		t.Fatal("stampOnly served a set with a stale settle stamp after Commit")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}
