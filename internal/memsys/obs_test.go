package memsys

import (
	"reflect"
	"testing"

	"hmtx/internal/obs"
	"hmtx/internal/vid"
)

func TestStatsAdd(t *testing.T) {
	a := Stats{L1Hits: 3, Commits: 1}
	b := Stats{L1Hits: 7, Aborts: 2}
	a.Add(&b)
	if a.L1Hits != 10 || a.Commits != 1 || a.Aborts != 2 {
		t.Fatalf("Add: got %+v", a)
	}
}

// TestStatsAddAllFields drives every field through Add via reflection, so a
// new Stats field can never be silently dropped from aggregation.
func TestStatsAddAllFields(t *testing.T) {
	var a, b Stats
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < av.NumField(); i++ {
		av.Field(i).SetUint(uint64(i + 1))
		bv.Field(i).SetUint(uint64(100 * (i + 1)))
	}
	a.Add(&b)
	for i := 0; i < av.NumField(); i++ {
		want := uint64(i+1) + uint64(100*(i+1))
		if got := av.Field(i).Uint(); got != want {
			t.Errorf("field %s = %d, want %d", av.Type().Field(i).Name, got, want)
		}
	}
}

func TestRegisterAndTrace(t *testing.T) {
	h := newTestH(2)
	reg := obs.NewRegistry()
	h.Register(reg, "memsys")
	tr := obs.NewTracer(obs.CatAll, 0)
	h.SetTracer(tr)

	h.PokeWord(addrA, 1)
	h.Load(0, addrA, vid.NonSpec) // miss -> bus + mem read
	h.Load(0, addrA, vid.NonSpec) // L1 hit
	h.Load(1, addrA, vid.NonSpec) // peer transfer
	h.Store(0, addrA, 42, 1)      // new speculative version
	h.Commit(1)

	snap := reg.Snapshot()
	get := func(name string) uint64 {
		t.Helper()
		for _, e := range snap.Entries {
			if e.Name == name {
				if e.Kind == "hist" {
					return e.Hist.Total
				}
				return e.Counter
			}
		}
		t.Fatalf("stat %q not registered", name)
		return 0
	}
	if get("memsys.l1[0].hits") == 0 {
		t.Error("l1[0].hits not counted")
	}
	if get("memsys.versions_created") != 1 {
		t.Errorf("versions_created = %d, want 1", get("memsys.versions_created"))
	}
	if get("memsys.load_latency") != 3 || get("memsys.store_latency") != 1 {
		t.Errorf("latency histograms = %d loads / %d stores, want 3/1",
			get("memsys.load_latency"), get("memsys.store_latency"))
	}

	// Per-cache hits must agree with the aggregate counters.
	var perCache uint64
	perCache = get("memsys.l1[0].hits") + get("memsys.l1[1].hits") + get("memsys.l2.hits")
	want := get("memsys.l1_hits") + get("memsys.peer_transfers") + get("memsys.l2_hits")
	if perCache != want {
		t.Errorf("per-cache hits %d != aggregate hits %d", perCache, want)
	}

	kinds := make(map[obs.Kind]int)
	for _, e := range tr.Events() {
		kinds[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KBusRequest, obs.KVersionCreate, obs.KCommit} {
		if kinds[k] == 0 {
			t.Errorf("no %v events traced", k)
		}
	}
}

func TestNilTracerNoEvents(t *testing.T) {
	h := newTestH(2)
	h.PokeWord(addrA, 1)
	h.Load(0, addrA, 1)
	h.Store(0, addrA, 2, 1)
	if h.Tracer() != nil {
		t.Fatal("tracer should default to nil")
	}
}
