package memsys

import (
	"testing"

	"hmtx/internal/vid"
)

// tinyConfig is a deliberately miniature hierarchy (256B L1s, 1KB L2) used
// to force evictions and exercise the §5.4 overflow machinery.
func tinyConfig(cores int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.L1Size = 256 // 2 sets x 2 ways
	cfg.L1Ways = 2
	cfg.L2Size = 1024 // 4 sets x 4 ways
	cfg.L2Ways = 4
	cfg.Sanitize = true
	return cfg
}

// TestSOOverflowAndReconstitution drives the §5.4 path: the non-speculative
// S-O(0,·) copy of a speculatively modified line is evicted all the way to
// memory, and a later low-VID request retrieves it from memory in
// S-O(0,vid+1).
func TestSOOverflowAndReconstitution(t *testing.T) {
	h := New(tinyConfig(2))
	h.PokeWord(addrA, 111)

	// VID 2 speculatively modifies addrA: S-O(0,2) + S-M(2,2).
	mustStore(t, h, 0, addrA, 222, 2)

	// Fill the same L1 and L2 sets with more speculative version pairs:
	// non-speculative lines would be preferred victims, but among
	// speculative lines the S-O(0) copies overflow to memory first.
	for i := 1; h.Stats().SOWritebacks == 0 && i < 16; i++ {
		mustStore(t, h, 0, addrA+Addr(i*256), uint64(i), 2)
	}
	if h.Stats().SOWritebacks == 0 {
		t.Fatal("S-O(0) copy was never overflowed to memory")
	}

	// A VID 1 read must still find the pre-modification value: the
	// request misses everywhere, the S-M line asserts the address was
	// speculatively modified, and memory supplies the S-O copy.
	if got := mustLoad(t, h, 1, addrA, 1); got != 111 {
		t.Fatalf("reconstituted S-O read = %d, want 111", got)
	}
	// And the speculative version is still intact.
	if got := mustLoad(t, h, 1, addrA, 2); got != 222 {
		t.Fatalf("speculative version read = %d, want 222", got)
	}
	h.Commit(1)
	h.Commit(2)
	if got := h.PeekWord(addrA); got != 222 {
		t.Fatalf("committed value = %d, want 222", got)
	}
}

// TestSpeculativeOverflowAborts verifies that evicting a speculatively
// modified line past the last-level cache forces an abort (§5.4) and that
// the abort restores the committed state.
func TestSpeculativeOverflowAborts(t *testing.T) {
	h := New(tinyConfig(1))
	conflicted := false
	for i := 0; i < 4096 && !conflicted; i++ {
		res := h.Store(0, Addr(0x200000+i*LineSize), uint64(i)+1, 3)
		conflicted = res.Conflict
	}
	if !conflicted {
		t.Fatal("speculative working set exceeding the LLC never aborted")
	}
	if h.Stats().OverflowAborts == 0 {
		t.Fatal("OverflowAborts not counted")
	}
	h.AbortAll()
	// All speculative data must be gone.
	for i := 0; i < 4096; i++ {
		if got := h.PeekWord(Addr(0x200000 + i*LineSize)); got != 0 {
			t.Fatalf("aborted store to line %d visible: %d", i, got)
		}
	}
}

// TestVictimPriority checks that the LLC prefers overflowing S-O(0) lines to
// aborting on other speculative lines (§5.4).
func TestVictimPriority(t *testing.T) {
	h := New(tinyConfig(1))
	// Two versioned lines in the same L2 set region.
	mustStore(t, h, 0, addrA, 1, 1)
	// Fill with clean non-speculative lines: evictions should never
	// abort, because clean lines and the S-O(0) copy go first.
	h.PokeWord(0x300000, 9)
	for i := 0; i < 64; i++ {
		mustLoad(t, h, 0, Addr(0x300000+i*LineSize), vid.NonSpec)
	}
	if h.Stats().OverflowAborts != 0 {
		t.Fatalf("evictions aborted despite non-speculative victims being available")
	}
	if got := mustLoad(t, h, 0, addrA, 1); got != 1 {
		t.Fatalf("speculative line lost: got %d, want 1", got)
	}
}

// TestEvictionPreservesSpeculativeReadMarks ensures S-E lines are not
// silently dropped on L1 eviction: the highVID marking must survive in the
// L2 so later conflicting stores are still detected.
func TestEvictionPreservesSpeculativeReadMarks(t *testing.T) {
	h := New(tinyConfig(1))
	h.PokeWord(addrA, 5)
	mustLoad(t, h, 0, addrA, 3) // S-E(0,3)
	// Push it out of the L1 with conflicting non-speculative lines.
	for i := 1; i <= 8; i++ {
		mustLoad(t, h, 0, addrA+Addr(i*256), vid.NonSpec)
	}
	// The mark must still cause a conflict for an earlier-VID store.
	if res := h.Store(0, addrA, 6, 2); !res.Conflict {
		t.Fatal("speculative read mark lost during L1 eviction")
	}
}
