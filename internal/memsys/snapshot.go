package memsys

import (
	"bytes"
	"encoding/binary"
	"hash/fnv"
	"sort"

	"hmtx/internal/vid"
)

// This file gives the hierarchy the snapshot support the model checker
// (internal/check) is built on: deep copies, so every explored edge can fork
// the simulator, and a canonical state encoding, so semantically equivalent
// configurations collapse into one visited-set entry (DESIGN.md §12).
//
// The statefp analyzer (tools/analyzers/statefp) keeps these methods honest:
// every field of a struct with a clone/canonical method must be referenced in
// one of those methods, so a field added to memsys cannot silently escape the
// checker's notion of state.

// Clone returns a deep copy of the hierarchy sharing no mutable state with
// the original. Observers are deliberately not carried over: the clone has no
// tracker, no tracer, no registered histograms, and a fresh sanitizer
// scratch. Statistics and LRU/generation bookkeeping are copied, so a clone
// behaves cycle-identically to the original under the same stimuli.
func (h *Hierarchy) Clone() *Hierarchy {
	c := &Hierarchy{
		cfg:             h.cfg,
		mem:             h.mem.clone(),
		lc:              h.lc,
		epoch:           h.epoch,
		stats:           h.stats,
		gen:             h.gen,
		pendingOverflow: h.pendingOverflow,
		pres:            make(map[Addr]presMask, len(h.pres)),
		tracker:         nil,
		tracer:          nil,
		prof:            nil,
		conflicts:       nil,
		histLoadLat:     nil,
		histStoreLat:    nil,
		san:             sanitizer{},
	}
	for a, m := range h.pres {
		c.pres[a] = m
	}
	for _, l1 := range h.l1s {
		c.l1s = append(c.l1s, l1.clone(c))
	}
	c.l2 = h.l2.clone(c)
	c.all = append(append([]*cache{}, c.l1s...), c.l2)
	return c
}

// clone deep-copies one cache level, re-homing it onto hierarchy h.
func (c *cache) clone(h *Hierarchy) *cache {
	cp := &cache{
		name:     c.name,
		id:       c.id,
		hier:     h,
		numSets:  c.numSets,
		ways:     c.ways,
		hits:     c.hits,
		lruClock: c.lruClock,
	}
	cp.sets = make([][]Line, len(c.sets))
	for i := range c.sets {
		cp.sets[i] = append([]Line(nil), c.sets[i]...)
	}
	cp.setGen = append([]uint64(nil), c.setGen...)
	cp.setTag = append([]Addr(nil), c.setTag...)
	return cp
}

// clone deep-copies the simulated main memory.
func (m *memory) clone() *memory {
	cp := newMemory()
	for a, data := range m.lines {
		cp.lines[a] = data
	}
	return cp
}

// AppendCanonical appends a canonical encoding of the hierarchy's semantic
// state to buf and returns the result. Two hierarchies with equal encodings
// are behaviourally indistinguishable under any future stimulus sequence that
// treats cores symmetrically; encodings are invariant under the permutations
// that cannot be observed through the protocol:
//
//   - way permutation: lines of one set encode as a sorted multiset, with
//     the LRU clock reduced to a per-set recency rank (victim selection only
//     ever compares stamps within one set);
//   - core permutation: the per-L1 encodings are sorted, because the
//     stimulus alphabet of the checker is core-symmetric;
//   - epoch distance: a line's epoch encodes only as current/stale, since
//     settling treats every stale epoch identically (§4.6), and pending lazy
//     commits reduce to a settled/unsettled bit (settling depends only on
//     the hierarchy's LC VID, §5.3);
//   - derived bookkeeping: snoop-filter presence bits (a conservative
//     superset of residency, DESIGN.md §11), settle-skip generation stamps,
//     and statistics are omitted entirely.
//
// Main memory is encoded only for the given line addresses: callers must
// pass (a superset of) every line their stimuli can touch. Cache-resident
// state is always encoded in full.
func (h *Hierarchy) AppendCanonical(buf []byte, addrs []Addr) []byte {
	buf = binary.BigEndian.AppendUint64(buf, uint64(h.lc))
	if h.pendingOverflow {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	encs := make([][]byte, 0, len(h.l1s))
	for _, c := range h.l1s {
		encs = append(encs, c.appendCanon(nil))
	}
	sort.Slice(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 })
	for _, e := range encs {
		buf = binary.BigEndian.AppendUint64(buf, uint64(len(e)))
		buf = append(buf, e...)
	}
	buf = h.l2.appendCanon(buf)
	for _, la := range addrs {
		la = LineAddr(la)
		buf = binary.BigEndian.AppendUint64(buf, la)
		data := h.mem.read(la)
		buf = append(buf, data[:]...)
	}
	return buf
}

// Fingerprint returns a 64-bit FNV-1a hash of the canonical encoding. See
// AppendCanonical for the equivalence it quotients by and the meaning of
// addrs.
func (h *Hierarchy) Fingerprint(addrs []Addr) uint64 {
	f := fnv.New64a()
	f.Write(h.AppendCanonical(nil, addrs))
	return f.Sum64()
}

// appendCanon encodes one cache level: per set, the sorted multiset of its
// valid lines' canonical encodings.
func (c *cache) appendCanon(buf []byte) []byte {
	h := c.hier
	var encs [][]byte
	for si := range c.sets {
		s := c.sets[si]
		encs = encs[:0]
		for wi := range s {
			if s[wi].St == Invalid {
				continue
			}
			// The LRU stamp canonicalizes as the line's recency rank
			// among the valid lines of its set: absolute stamp values
			// are unobservable, relative order within a set decides
			// victim selection (cache.pickVictim).
			rank := 0
			for wj := range s {
				if s[wj].St != Invalid && s[wj].lru < s[wi].lru {
					rank++
				}
			}
			encs = append(encs, s[wi].appendCanon(nil, h.epoch, h.lc, rank))
		}
		if len(encs) == 0 {
			continue
		}
		sort.Slice(encs, func(i, j int) bool { return bytes.Compare(encs[i], encs[j]) < 0 })
		buf = binary.BigEndian.AppendUint64(buf, uint64(si))
		buf = append(buf, byte(len(encs)))
		for _, e := range encs {
			buf = append(buf, e...)
		}
	}
	return buf
}

// appendCanon encodes one line against the hierarchy registers (epoch, lc).
// Epoch and SettledLC reduce to current/stale and settled/unsettled bits, and
// the shadow mark to its effective (epoch-decayed) value, because that is all
// settling and shadow reads can observe (line.go).
func (l *Line) appendCanon(buf []byte, epoch uint64, lc vid.V, lruRank int) []byte {
	buf = binary.BigEndian.AppendUint64(buf, l.Tag)
	buf = append(buf, byte(l.St), byte(l.Mod), byte(l.High))
	same, settled := byte(0), byte(0)
	if l.Epoch == epoch {
		same = 1
		if l.SettledLC == lc {
			settled = 1
		}
	}
	sh := vid.V(0)
	if l.ShadowEpoch == epoch {
		sh = l.ShadowHigh
	}
	buf = append(buf, same, settled, byte(sh), byte(lruRank))
	buf = append(buf, l.Data[:]...)
	return buf
}

// Evict forces the eviction of one resident version of lineAddr from the
// given cache (0..Cores-1 are the L1s, Cores the L2), modelling capacity
// pressure from unrelated traffic. The least recently used version of the
// line is chosen; the victim then follows the normal eviction cascade
// (placeVictim): L1 victims move to the L2, last-level victims write back,
// vanish, or force a §5.4 overflow abort, which is reported through
// Result.Conflict exactly as on Load/Store. It returns false if the cache
// holds no version of the line.
func (h *Hierarchy) Evict(cacheIdx int, lineAddr Addr) (bool, Result) {
	h.sanBegin(lineAddr)
	lineAddr = LineAddr(lineAddr)
	c := h.all[cacheIdx]
	s := c.set(lineAddr) // settle resident versions first, as insert would
	var victim *Line
	for i := range s {
		ln := &s[i]
		if ln.St == Invalid || ln.Tag != lineAddr {
			continue
		}
		if victim == nil || ln.lru < victim.lru {
			victim = ln
		}
	}
	var res Result
	if victim == nil {
		h.sanCheck()
		return false, res
	}
	v := *victim
	victim.St = Invalid
	still := false
	for i := range s {
		if s[i].St != Invalid && s[i].Tag == lineAddr {
			still = true
			break
		}
	}
	if !still {
		h.clearPresent(c, lineAddr)
	}
	h.stats.ForcedEvicts++
	h.placeVictim(v, c)
	h.checkOverflow(&res)
	h.sanCheck()
	return true, res
}
