package memsys

import (
	"strings"
	"testing"

	"hmtx/internal/vid"
)

// plant writes a raw line into cache c's correct set, bypassing the protocol,
// to construct illegal states the sanitizer must reject.
func plant(h *Hierarchy, c *cache, ln Line) {
	set := c.sets[c.setIndex(ln.Tag)]
	for i := range set {
		if set[i].St == Invalid {
			c.lruClock++
			ln.lru = c.lruClock
			set[i] = ln
			// Planted lines model a line that legally entered the cache,
			// so keep the snoop-filter presence bits covering it.
			h.markPresent(c, ln.Tag)
			return
		}
	}
	panic("plant: set full")
}

func specLine(h *Hierarchy, tag Addr, st State, mod, high vid.V) Line {
	return Line{Tag: tag, St: st, Mod: mod, High: high, Epoch: h.epoch, SettledLC: h.lc}
}

func TestSanitizeCleanFlows(t *testing.T) {
	h := newTestH(4)
	h.PokeWord(addrA, 7)
	if v := mustLoad(t, h, 0, addrA, 1); v != 7 {
		t.Fatalf("load vid 1: got %d, want 7", v)
	}
	mustStore(t, h, 1, addrA, 41, 2)
	if v := mustLoad(t, h, 2, addrA, 3); v != 41 {
		t.Fatalf("load vid 3: got %d, want 41", v)
	}
	h.Commit(1)
	h.Commit(2)
	h.AbortAll()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("legal flow violates invariants: %v", err)
	}
}

func TestSanitizeDetectsViolations(t *testing.T) {
	cases := []struct {
		name  string
		build func(h *Hierarchy)
		want  string
	}{
		{
			name: "two latest versions",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecModified, 2, 2))
				plant(h, h.l1s[1], specLine(h, addrA, SpecModified, 2, 2))
			},
			want: "multiple latest versions",
		},
		{
			name: "overlapping version ranges",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecOwned, 1, 5))
				plant(h, h.l1s[1], specLine(h, addrA, SpecModified, 3, 3))
			},
			want: "version ranges overlap",
		},
		{
			name: "chain without latest",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecOwned, 0, 2))
				plant(h, h.l1s[1], specLine(h, addrA, SpecOwned, 2, 4))
			},
			want: "no latest version",
		},
		{
			name: "S-E with nonzero modVID",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecExclusive, 2, 3))
			},
			want: "S-E must have modVID 0",
		},
		{
			name: "malformed range",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecOwned, 4, 2))
			},
			want: "modVID > highVID",
		},
		{
			name: "speculative owner beside non-speculative copy",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecModified, 2, 2))
				plant(h, h.l1s[1], Line{Tag: addrA, St: Shared, Epoch: h.epoch, SettledLC: h.lc})
			},
			want: "coexists with non-speculative",
		},
		{
			name: "two exclusive copies",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], Line{Tag: addrA, St: Modified, Epoch: h.epoch, SettledLC: h.lc})
				plant(h, h.l1s[1], Line{Tag: addrA, St: Shared, Epoch: h.epoch, SettledLC: h.lc})
			},
			want: "M/E copy coexists",
		},
		{
			name: "diverging shared data",
			build: func(h *Hierarchy) {
				a := Line{Tag: addrA, St: Owned, Epoch: h.epoch, SettledLC: h.lc}
				b := a
				b.St = Shared
				b.Data[0] = 0xff
				plant(h, h.l1s[0], a)
				plant(h, h.l1s[1], b)
			},
			want: "non-speculative copies diverge",
		},
		{
			name: "copy diverging from owner",
			build: func(h *Hierarchy) {
				own := specLine(h, addrA, SpecModified, 2, 3)
				cp := specLine(h, addrA, SpecShared, 2, 3)
				cp.Data[5] = 0xaa
				plant(h, h.l1s[0], own)
				plant(h, h.l1s[1], cp)
			},
			want: "diverges from owner",
		},
		{
			name: "serveable copy without owner",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecModified, 4, 4))
				plant(h, h.l1s[1], specLine(h, addrA, SpecShared, 2, 4))
			},
			want: "no resident owner",
		},
		{
			name: "same-cache serve overlap",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], Line{Tag: addrA, St: Exclusive, Epoch: h.epoch, SettledLC: h.lc})
				plant(h, h.l1s[0], specLine(h, addrA, SpecShared, 0, 2))
			},
			want: "serve ranges overlap",
		},
		{
			name: "duplicate unmerged versions in one set",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecOwned, 2, 3))
				plant(h, h.l1s[0], specLine(h, addrA, SpecShared, 2, 3))
			},
			want: "duplicate unmerged versions",
		},
		{
			name: "line from a future epoch",
			build: func(h *Hierarchy) {
				ln := specLine(h, addrA, SpecModified, 2, 2)
				ln.Epoch = h.epoch + 1
				plant(h, h.l1s[0], ln)
			},
			want: "settled to",
		},
		{
			name: "LRU stamp beyond clock",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], specLine(h, addrA, SpecModified, 2, 2))
				set := h.l1s[0].sets[h.l1s[0].setIndex(addrA)]
				set[0].lru = h.l1s[0].lruClock + 100
			},
			want: "LRU stamp",
		},
		{
			name: "nonzero VIDs on a non-speculative line",
			build: func(h *Hierarchy) {
				plant(h, h.l1s[0], Line{Tag: addrA, St: Shared, High: 3, Epoch: h.epoch, SettledLC: h.lc})
			},
			want: "non-speculative line carries VIDs",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newTestH(2)
			tc.build(h)
			err := h.CheckInvariants()
			if err == nil {
				t.Fatalf("invariant violation not detected\n%s", h.String())
			}
			iv, ok := err.(*InvariantViolation)
			if !ok {
				t.Fatalf("error is %T, want *InvariantViolation", err)
			}
			if !strings.Contains(iv.Msg, tc.want) {
				t.Fatalf("violation %q does not mention %q", iv.Msg, tc.want)
			}
			if !strings.Contains(iv.Dump, "Hierarchy{") {
				t.Fatalf("violation carries no hierarchy dump")
			}
		})
	}
}

// TestSanitizePanicsDuringOperation proves the per-operation hook fires: a
// corrupted hierarchy panics with an *InvariantViolation on the next access.
func TestSanitizePanicsDuringOperation(t *testing.T) {
	h := newTestH(2)
	plant(h, h.l1s[0], specLine(h, addrA, SpecOwned, 4, 2)) // Mod > High
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("corrupted state did not panic")
		}
		if _, ok := r.(*InvariantViolation); !ok {
			t.Fatalf("panic value is %T, want *InvariantViolation", r)
		}
	}()
	h.Load(1, addrA, 5)
}

func TestHierarchyDump(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 1, 2)
	s := h.String()
	for _, want := range []string{"Hierarchy{epoch=0 lc=0", "L1.0", "L2", "S-M(2,2)", "memory:"} {
		if !strings.Contains(s, want) {
			t.Fatalf("dump missing %q:\n%s", want, s)
		}
	}
}
