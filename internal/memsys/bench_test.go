package memsys

import (
	"testing"

	"hmtx/internal/vid"
)

// newBenchH builds a hierarchy for performance benchmarks: MOESI-San off,
// so the numbers reflect the production simulation path (the protocol tests
// run the same scenarios with Sanitize on).
func newBenchH(cores int) *Hierarchy {
	cfg := DefaultConfig()
	cfg.Cores = cores
	return New(cfg)
}

// BenchmarkL1HitLoad measures the single hottest path of the whole
// simulator: a non-speculative load served by the local L1. This path must
// stay allocation-free (TestHotPathZeroAllocs).
func BenchmarkL1HitLoad(b *testing.B) {
	h := newBenchH(2)
	h.PokeWord(addrA, 1)
	h.Load(0, addrA, vid.NonSpec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0, addrA, vid.NonSpec)
	}
}

// BenchmarkSnoopMiss measures a bus-snooped miss: alternating cores write
// the same line, so every store misses locally and migrates the line from
// the peer L1 over the bus.
func BenchmarkSnoopMiss(b *testing.B) {
	h := newBenchH(2)
	h.Store(0, addrA, 1, vid.NonSpec)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Store((i+1)&1, addrA, uint64(i), vid.NonSpec)
	}
}

// BenchmarkSettleAfterCommit measures the lazy-commit settle path (§5.3):
// each iteration creates a speculative version, commits it, and touches the
// line so the pending commit settles on access.
func BenchmarkSettleAfterCommit(b *testing.B) {
	h := newBenchH(2)
	max := uint64(h.Config().VIDSpace.Max())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vid.V(uint64(i)%max + 1)
		if v == 1 && i > 0 {
			h.VIDReset()
		}
		h.Store(0, addrA, uint64(i), v)
		h.Commit(v)
		h.Load(0, addrA, vid.NonSpec)
	}
}

// BenchmarkL1HitNonSpec measures the simulator's hot path: an L1 load hit.
func BenchmarkL1HitNonSpec(b *testing.B) {
	h := newTestH(2)
	h.PokeWord(addrA, 1)
	h.Load(0, addrA, vid.NonSpec)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0, addrA, vid.NonSpec)
	}
}

// BenchmarkL1HitSpeculative measures a speculative load hit including VID
// comparison and tracker bookkeeping.
func BenchmarkL1HitSpeculative(b *testing.B) {
	h := newTestH(2)
	h.PokeWord(addrA, 1)
	h.Load(0, addrA, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(0, addrA, 1)
	}
}

// BenchmarkSpecStoreNewVersion measures version creation: each iteration
// stores with a fresh VID, creating an S-O/S-M pair, and commits to bound
// the version chain.
func BenchmarkSpecStoreNewVersion(b *testing.B) {
	h := newTestH(2)
	max := uint64(h.Config().VIDSpace.Max())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vid.V(uint64(i)%max + 1)
		if v == 1 && i > 0 {
			h.VIDReset()
		}
		h.Store(0, addrA, uint64(i), v)
		h.Commit(v)
	}
}

// BenchmarkCrossCacheForwarding measures uncommitted value forwarding: a
// store on one core read by the same transaction on another core.
func BenchmarkCrossCacheForwarding(b *testing.B) {
	h := newTestH(2)
	h.Store(0, addrA, 1, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Load(1, addrA, 1)
		h.Load(0, addrA, 1)
	}
}

// BenchmarkLazyCommit measures the §5.3 commit: a single LC VID update,
// independent of the resident speculative footprint.
func BenchmarkLazyCommit(b *testing.B) {
	h := newTestH(2)
	max := uint64(h.Config().VIDSpace.Max())
	for i := 0; i < 1000; i++ {
		h.Store(0, Addr(0x10000+i*LineSize), uint64(i), 1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vid.V(uint64(i)%max + 1)
		if v == 1 && i > 0 {
			h.VIDReset()
		}
		h.Commit(v)
	}
}

// BenchmarkAbortSweep measures the eager abort flush with a sizable
// speculative footprint resident.
func BenchmarkAbortSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		h := newTestH(2)
		for j := 0; j < 2000; j++ {
			h.Store(0, Addr(0x10000+j*LineSize), uint64(j), 1)
		}
		b.StartTimer()
		h.AbortAll()
	}
}
