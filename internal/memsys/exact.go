package memsys

import (
	"encoding/binary"
	"fmt"
	"reflect"
	"sort"

	"hmtx/internal/vid"
)

// This file implements the exact (round-trippable) state encoding behind the
// hmtx-ckpt/v1 checkpoint format (internal/ckpt, DESIGN.md §18). Unlike
// AppendCanonical (snapshot.go), which deliberately quotients by way and core
// permutations, epoch distance and derived bookkeeping so the model checker
// can collapse equivalent states, AppendExact preserves every bit of the
// hierarchy's mutable state: a hierarchy restored with RestoreExact behaves
// byte-identically to the original under any stimulus sequence, including
// statistics, victim selection (absolute LRU stamps), settle-skip generation
// stamps and snoop-filter presence bits.
//
// The encoding is versioned by its magic string and validated against the
// restoring hierarchy's geometry, so a checkpoint taken under one Config can
// never be silently decoded into an incompatible machine.

// exactMagic versions the exact binary encoding. Bump it on any layout
// change; internal/ckpt carries the whole blob opaquely.
const exactMagic = "hmtxmem1"

// AppendExact appends a complete, restorable encoding of the hierarchy's
// mutable state to buf and returns the result. Observers (tracker, tracer,
// profiler, metric instruments, registered histograms) and the MOESI-San
// scratch state are not part of the encoding, exactly as they are not part
// of a Clone: they are re-attached by the restoring caller.
func (h *Hierarchy) AppendExact(buf []byte) []byte {
	buf = append(buf, exactMagic...)
	for _, g := range h.geometry() {
		buf = binary.BigEndian.AppendUint64(buf, g)
	}
	buf = append(buf, byte(h.lc))
	buf = binary.BigEndian.AppendUint64(buf, h.epoch)
	buf = binary.BigEndian.AppendUint64(buf, h.gen)
	if h.pendingOverflow {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}

	// Statistics, in declaration order. Stats.Add already guarantees every
	// field is a uint64; rely on the same reflective walk so a new counter
	// cannot silently fall out of the checkpoint format.
	sv := reflect.ValueOf(&h.stats).Elem()
	buf = binary.BigEndian.AppendUint64(buf, uint64(sv.NumField()))
	for i := 0; i < sv.NumField(); i++ {
		buf = binary.BigEndian.AppendUint64(buf, sv.Field(i).Uint())
	}

	// Snoop-filter presence masks, sorted by line address. The filter is a
	// conservative superset and carries no architectural data, but it is
	// part of the deterministic replay state: which caches a sweep visits
	// (and therefore which stale bits it clears) depends on it.
	pres := make([]Addr, 0, len(h.pres))
	for a := range h.pres {
		pres = append(pres, a)
	}
	sort.Slice(pres, func(i, j int) bool { return pres[i] < pres[j] })
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(pres)))
	for _, a := range pres {
		buf = binary.BigEndian.AppendUint64(buf, a)
		m := h.pres[a]
		for wi := 0; wi < presWords; wi++ {
			buf = binary.BigEndian.AppendUint64(buf, m[wi])
		}
	}

	// Main memory, sorted by line address.
	mem := make([]Addr, 0, len(h.mem.lines))
	for a := range h.mem.lines {
		mem = append(mem, a)
	}
	sort.Slice(mem, func(i, j int) bool { return mem[i] < mem[j] })
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(mem)))
	for _, a := range mem {
		buf = binary.BigEndian.AppendUint64(buf, a)
		data := h.mem.lines[a]
		buf = append(buf, data[:]...)
	}

	// Every cache, L1s in core order then the L2, frame by frame.
	for _, c := range h.allCaches() {
		buf = c.appendExact(buf)
	}
	return buf
}

// geometry returns the configuration parameters that determine the state
// layout. Latencies and feature flags live in the surrounding checkpoint
// document; only layout-affecting parameters gate a restore.
func (h *Hierarchy) geometry() []uint64 {
	return []uint64{
		uint64(h.cfg.Cores),
		uint64(h.cfg.L1Size), uint64(h.cfg.L1Ways),
		uint64(h.cfg.L2Size), uint64(h.cfg.L2Ways),
		uint64(h.cfg.VIDSpace.Bits),
	}
}

func (c *cache) appendExact(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, c.lruClock)
	buf = binary.BigEndian.AppendUint64(buf, c.hits)
	for si := range c.sets {
		buf = binary.BigEndian.AppendUint64(buf, c.setGen[si])
		buf = binary.BigEndian.AppendUint64(buf, c.setTag[si])
		for wi := range c.sets[si] {
			buf = c.sets[si][wi].appendExact(buf)
		}
	}
	return buf
}

func (l *Line) appendExact(buf []byte) []byte {
	buf = binary.BigEndian.AppendUint64(buf, l.Tag)
	buf = append(buf, byte(l.St), byte(l.Mod), byte(l.High))
	buf = binary.BigEndian.AppendUint64(buf, l.Epoch)
	buf = append(buf, byte(l.SettledLC), byte(l.ShadowHigh))
	buf = binary.BigEndian.AppendUint64(buf, l.ShadowEpoch)
	buf = binary.BigEndian.AppendUint64(buf, l.lru)
	buf = append(buf, l.Data[:]...)
	return buf
}

// exactReader decodes the fixed-width fields of the exact encoding, turning
// truncation into an error instead of a panic.
type exactReader struct {
	buf []byte
	err error
}

func (r *exactReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.buf) < n {
		r.err = fmt.Errorf("memsys: truncated exact encoding (need %d bytes, have %d)", n, len(r.buf))
		return nil
	}
	b := r.buf[:n]
	r.buf = r.buf[n:]
	return b
}

func (r *exactReader) u64() uint64 {
	b := r.bytes(8)
	if b == nil {
		return 0
	}
	return binary.BigEndian.Uint64(b)
}

func (r *exactReader) u8() byte {
	b := r.bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// RestoreExact overwrites the hierarchy's mutable state with the encoding
// produced by AppendExact. The hierarchy must have been built by New with a
// geometry-compatible Config (same core count, cache sizes/associativities
// and VID width); latencies and feature flags are taken from the receiver's
// own Config. Observers keep whatever the caller attached. On error the
// hierarchy may be partially overwritten and must be discarded.
func (h *Hierarchy) RestoreExact(enc []byte) error {
	r := &exactReader{buf: enc}
	if magic := r.bytes(len(exactMagic)); r.err != nil || string(magic) != exactMagic {
		return fmt.Errorf("memsys: not an exact state encoding (bad magic)")
	}
	want := h.geometry()
	for i, w := range want {
		if g := r.u64(); r.err == nil && g != w {
			return fmt.Errorf("memsys: checkpoint geometry mismatch (field %d: encoded %d, machine %d)", i, g, w)
		}
	}
	h.lc = vid.V(r.u8())
	h.epoch = r.u64()
	h.gen = r.u64()
	h.pendingOverflow = r.u8() != 0

	sv := reflect.ValueOf(&h.stats).Elem()
	if n := r.u64(); r.err == nil && n != uint64(sv.NumField()) {
		return fmt.Errorf("memsys: checkpoint has %d stats fields, machine has %d", n, sv.NumField())
	}
	for i := 0; i < sv.NumField(); i++ {
		sv.Field(i).SetUint(r.u64())
	}

	h.pres = make(map[Addr]presMask)
	for n := r.u64(); n > 0 && r.err == nil; n-- {
		a := r.u64()
		var m presMask
		for wi := 0; wi < presWords; wi++ {
			m[wi] = r.u64()
		}
		h.pres[a] = m
	}

	h.mem = newMemory()
	for n := r.u64(); n > 0 && r.err == nil; n-- {
		a := r.u64()
		var data [LineSize]byte
		copy(data[:], r.bytes(LineSize))
		h.mem.lines[a] = data
	}

	for _, c := range h.allCaches() {
		c.restoreExact(r)
	}
	if r.err != nil {
		return r.err
	}
	if len(r.buf) != 0 {
		return fmt.Errorf("memsys: %d trailing bytes after exact encoding", len(r.buf))
	}
	h.san = sanitizer{}
	return nil
}

func (c *cache) restoreExact(r *exactReader) {
	c.lruClock = r.u64()
	c.hits = r.u64()
	for si := range c.sets {
		c.setGen[si] = r.u64()
		c.setTag[si] = r.u64()
		for wi := range c.sets[si] {
			c.sets[si][wi].restoreExact(r)
		}
	}
}

func (l *Line) restoreExact(r *exactReader) {
	l.Tag = r.u64()
	l.St = State(r.u8())
	l.Mod = vid.V(r.u8())
	l.High = vid.V(r.u8())
	l.Epoch = r.u64()
	l.SettledLC = vid.V(r.u8())
	l.ShadowHigh = vid.V(r.u8())
	l.ShadowEpoch = r.u64()
	l.lru = r.u64()
	copy(l.Data[:], r.bytes(LineSize))
}

// Addrs returns every line address the hierarchy knows about — resident in
// any cache or present in main memory — sorted ascending. It is the address
// universe hmtxdbg enumerates for state dumps and diffs.
func (h *Hierarchy) Addrs() []Addr {
	seen := make(map[Addr]struct{}, len(h.mem.lines))
	for a := range h.mem.lines {
		seen[a] = struct{}{}
	}
	for _, c := range h.allCaches() {
		for si := range c.sets {
			s := c.sets[si]
			for wi := range s {
				if s[wi].St != Invalid {
					seen[s[wi].Tag] = struct{}{}
				}
			}
		}
	}
	out := make([]Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
