package memsys

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hmtx/internal/vid"
)

// refMem is the sequential reference: a flat map applied in program order.
type refMem map[Addr]uint64

func (r refMem) load(a Addr) uint64     { return r[a] }
func (r refMem) store(a Addr, v uint64) { r[a] = v }

// TestPropertySequentialSemantics drives random transactional schedules and
// checks that speculative execution preserves the original program's
// sequential semantics (§4.3): every load observes exactly the value the
// sequential program would, and the final committed memory image matches.
//
// Transactions execute in VID order but hop between cores arbitrarily and
// commit lazily (up to 3 transactions outstanding), exercising uncommitted
// value forwarding, cross-cache version migration, and lazy commit settling.
func TestPropertySequentialSemantics(t *testing.T) {
	if err := quick.Check(seqSemanticsProp(t), &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestSeqSemanticsRegressions pins seeds that exposed protocol bugs during
// development.
func TestSeqSemanticsRegressions(t *testing.T) {
	f := seqSemanticsProp(t)
	for _, seed := range []int64{-8807290172161495414, 0, 1, 42} {
		if !f(seed) {
			t.Fatalf("seed %d failed", seed)
		}
	}
}

func seqSemanticsProp(t *testing.T) func(int64) bool {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newTestH(4)
		ref := make(refMem)
		pool := make([]Addr, 24)
		for i := range pool {
			// A handful of lines, several words per line, so
			// transactions collide on lines constantly.
			pool[i] = Addr(0x4000 + (i%6)*LineSize + (i/6)*WordSize)
		}
		nTx := 1 + rng.Intn(20)
		committed := vid.V(0)
		for tx := 1; tx <= nTx; tx++ {
			v := vid.V(tx)
			nOps := 1 + rng.Intn(12)
			for op := 0; op < nOps; op++ {
				core := rng.Intn(4)
				addr := pool[rng.Intn(len(pool))]
				if rng.Intn(2) == 0 {
					got, res := h.Load(core, addr, v)
					if res.Conflict {
						t.Logf("seed %d: unexpected conflict: %s", seed, res.Cause)
						return false
					}
					if got != ref.load(addr) {
						t.Logf("seed %d: tx %d load %#x = %d, want %d", seed, tx, addr, got, ref.load(addr))
						return false
					}
				} else {
					val := rng.Uint64()
					if res := h.Store(core, addr, val, v); res.Conflict {
						t.Logf("seed %d: unexpected store conflict: %s", seed, res.Cause)
						return false
					}
					ref.store(addr, val)
				}
			}
			// Commit lazily: keep up to 3 transactions outstanding.
			for committed+3 < vid.V(tx+1) {
				committed++
				h.Commit(committed)
			}
		}
		for committed < vid.V(nTx) {
			committed++
			h.Commit(committed)
		}
		for _, a := range pool {
			if got := h.PeekWord(a); got != ref.load(a) {
				t.Logf("seed %d: final %#x = %d, want %d", seed, a, got, ref.load(a))
				return false
			}
		}
		return true
	}
	return f
}

// TestPropertyPipelinedStages models the DSWP access pattern: stage 1 of
// transaction i runs ahead of stage 2 of transaction i-1 (out-of-order
// between pipeline stages, in-order per stage), with stage 2 reading values
// forwarded from stage 1 of the same uncommitted transaction.
func TestPropertyPipelinedStages(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newTestH(4)
		iters := 2 + rng.Intn(15)
		const prodAddr = Addr(0x8000) // "producedNode": one shared cell, one version per tx
		const accAddr = Addr(0x9000)  // accumulator written by stage 2 in order
		recur := Addr(0xA000)         // recurrence cell owned by stage 1

		type pending struct {
			tx  int
			val uint64
		}
		var queue []pending
		acc := uint64(0)
		next := 1 // next tx for stage 1
		done := 1 // next tx for stage 2

		runStage2 := func(p pending) bool {
			v := vid.V(p.tx)
			got, res := h.Load(1+rng.Intn(3), prodAddr, v)
			if res.Conflict || got != p.val {
				t.Logf("seed %d: stage2 tx %d read %d, want %d (conflict=%v)", seed, p.tx, got, p.val, res.Conflict)
				return false
			}
			cur, _ := h.Load(1+rng.Intn(3), accAddr, v)
			if cur != acc {
				t.Logf("seed %d: stage2 tx %d acc read %d, want %d", seed, p.tx, cur, acc)
				return false
			}
			acc = cur + got
			if res := h.Store(1+rng.Intn(3), accAddr, acc, v); res.Conflict {
				t.Logf("seed %d: acc store conflict: %s", seed, res.Cause)
				return false
			}
			h.Commit(v)
			return true
		}

		for done <= iters {
			// Randomly run stage 1 ahead (bounded pipeline depth).
			if next <= iters && len(queue) < 4 && (rng.Intn(2) == 0 || done == next) {
				v := vid.V(next)
				// Stage 1 walks its recurrence and produces a value.
				old, _ := h.Load(0, recur, v)
				val := old*3 + uint64(next)
				if res := h.Store(0, recur, val, v); res.Conflict {
					t.Logf("seed %d: recurrence store conflict: %s", seed, res.Cause)
					return false
				}
				if res := h.Store(0, prodAddr, val, v); res.Conflict {
					t.Logf("seed %d: produce store conflict: %s", seed, res.Cause)
					return false
				}
				queue = append(queue, pending{next, val})
				next++
				continue
			}
			if len(queue) == 0 {
				continue
			}
			if !runStage2(queue[0]) {
				return false
			}
			queue = queue[1:]
			done++
		}
		// Verify the final accumulator matches a sequential execution.
		want := uint64(0)
		r := uint64(0)
		for i := 1; i <= iters; i++ {
			r = r*3 + uint64(i)
			want += r
		}
		if got := h.PeekWord(accAddr); got != want {
			t.Logf("seed %d: final acc %d, want %d", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAbortRestoresCommittedPrefix aborts a random schedule midway
// and checks that exactly the committed prefix survives.
func TestPropertyAbortRestoresCommittedPrefix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := newTestH(2)
		ref := make(refMem)       // state after every executed tx
		refCommit := make(refMem) // state after committed prefix only
		nTx := 2 + rng.Intn(10)
		abortAt := 1 + rng.Intn(nTx)
		committed := 0
		for tx := 1; tx <= nTx; tx++ {
			v := vid.V(tx)
			for op := 0; op < 4; op++ {
				addr := Addr(0x4000 + rng.Intn(8)*WordSize)
				val := rng.Uint64()
				if res := h.Store(rng.Intn(2), addr, val, v); res.Conflict {
					return false
				}
				ref.store(addr, val)
			}
			if tx <= abortAt-1 && rng.Intn(2) == 0 {
				for committed < tx {
					committed++
					h.Commit(vid.V(committed))
				}
				for a, vl := range ref {
					refCommit[a] = vl
				}
			}
			if tx == abortAt {
				h.AbortAll()
				for a := Addr(0x4000); a < 0x4000+8*WordSize; a += WordSize {
					if got := h.PeekWord(a); got != refCommit[a] {
						t.Logf("seed %d: post-abort %#x = %d, want %d", seed, a, got, refCommit[a])
						return false
					}
				}
				return true
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTinyCacheEvictions reruns the sequential-semantics property on
// a miniature hierarchy so lines constantly migrate between levels and S-O
// copies overflow to memory. Overflow-forced aborts of speculative lines are
// legal; everything else must behave identically.
func TestPropertyTinyCacheEvictions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := New(tinyConfig(2))
		ref := make(refMem)
		nTx := 1 + rng.Intn(8)
		committed := vid.V(0)
		for tx := 1; tx <= nTx; tx++ {
			v := vid.V(tx)
			for op := 0; op < 8; op++ {
				// Spread across many lines to force evictions.
				addr := Addr(0x4000 + rng.Intn(64)*LineSize)
				if rng.Intn(2) == 0 {
					got, res := h.Load(rng.Intn(2), addr, v)
					if res.Conflict {
						return h.Stats().OverflowAborts > 0 // legal forced abort
					}
					if got != ref.load(addr) {
						t.Logf("seed %d: load %#x = %d, want %d", seed, addr, got, ref.load(addr))
						return false
					}
				} else {
					val := rng.Uint64()
					res := h.Store(rng.Intn(2), addr, val, v)
					if res.Conflict {
						return h.Stats().OverflowAborts > 0
					}
					ref.store(addr, val)
				}
			}
			committed++
			h.Commit(committed)
		}
		for i := 0; i < 64; i++ {
			a := Addr(0x4000 + i*LineSize)
			if got := h.PeekWord(a); got != ref.load(a) {
				t.Logf("seed %d: final %#x = %d, want %d", seed, a, got, ref.load(a))
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(7))}); err != nil {
		t.Fatal(err)
	}
}
