package memsys

import "hmtx/internal/vid"

// This file is the memsys half of the domain-sharded parallel scheduler
// (internal/engine/domains.go, DESIGN.md §16). During a parallel round, each
// core's worker goroutine may execute "fast" operations that touch only
// core-private state; a load qualifies only when it can be served entirely
// from the requesting core's own L1 with no protocol side effects beyond that
// cache. TryLocalLoad is that restricted load path: it mirrors the L1-hit arm
// of Hierarchy.load exactly, and refuses (ok=false) anything that would need
// the bus, the L2, another core's cache, shared statistics mutation beyond
// what the caller replays, or an SLA decision.
//
// Concurrency contract: during a round, TryLocalLoad(core, ...) is called
// only by core's own worker, and no global operation (Store, remote Load,
// Commit, AbortAll, VIDReset, Evict) runs concurrently. The only state it
// writes is core-private — the core's own L1 (settle scans, LRU stamps,
// per-cache hit counter, High bumps on resident lines) — so concurrent calls
// for different cores never race. Hierarchy-global state (h.stats, h.pres,
// h.lc, h.epoch, h.gen, pendingOverflow) is read-only here; the caller
// buffers the statistics deltas (L1Hits, SpecLoads) and replays them in
// canonical key order.
//
// TryLocalLoad never calls the tracker: the engine only offers loads whose
// line is already in the issuing transaction's access sets, so the serial
// path's trackLoad would find SpecTouch(...)=already and send no SLA; the
// engine replicates the read-set insert and speculative-access count itself.
//
//hmtx:hotpath
func (h *Hierarchy) TryLocalLoad(core int, addr Addr, a vid.V, stampOnly bool) (val uint64, res Result, specHit, ok bool) {
	if h.pendingOverflow {
		// A pending §5.4 overflow must surface as Result.Conflict on the
		// very next operation; only the serial path reports it.
		return 0, res, false, false
	}
	la := LineAddr(addr)
	l1 := h.l1s[core]
	if stampOnly {
		// The caller samples live spec-line occupancy between operations
		// (hmtx-series); a settle scan here would commit lazy state out of
		// canonical order and change those samples. Only proceed when the
		// set is already settle-stamped for this tag, making the scan in
		// findHit→set a provable no-op.
		si := l1.setIndex(la)
		if l1.setGen[si] != h.gen || l1.setTag[si] != la {
			return 0, res, false, false
		}
	}
	spec := a != vid.NonSpec
	eff := a
	if !spec {
		eff = h.lc
	}
	// findHit settles resident versions of la first (cache.set). If the
	// probe then fails, that settle already happened earlier than the serial
	// schedule would have done it — which is invisible: settling is a pure,
	// composable function of (line, epoch, lc) (lazy commit, §5.3), so
	// settling now and re-settling at the op's serial turn yields the state
	// a single settle there would have.
	ln := l1.findHit(la, eff, false)
	if ln == nil {
		return 0, res, false, false
	}
	if spec && !ln.St.Speculative() {
		// Speculatively reading a non-speculative line converts it
		// (specReadTransition) and may need a bus upgrade — protocol-global
		// work, and a state change the series sampler could observe.
		return 0, res, false, false
	}
	// The L1-hit arm of Hierarchy.load, minus the shared-stats bumps
	// (L1Hits, SpecLoads) that the caller replays in key order.
	l1.hits++
	l1.touch(ln)
	val = ln.Word(addr)
	if spec && ln.St.latest() && a > ln.High {
		ln.High = a
	}
	res.Lat = h.cfg.L1Lat
	return val, res, spec, true
}

// HasLatencyHists reports whether per-operation latency histograms are
// registered on the hierarchy. The parallel scheduler falls back to the
// serial loop when they are: histogram observation order is part of the
// byte-identical output contract and only the serial path preserves it.
func (h *Hierarchy) HasLatencyHists() bool {
	return h.histLoadLat != nil || h.histStoreLat != nil
}
