package memsys

import (
	"hmtx/internal/metrics"
	"hmtx/internal/vid"
)

// SetConflicts installs the causal conflict recorder (nil disables it). The
// hierarchy records a who-aborted-whom edge at every point the protocol
// detects misspeculation — the store dependence check (§4.3), SLA replay
// mismatches (§5.1), and speculative overflow past the last-level cache
// (§5.4) — while the engine, which owns simulated time, stamps the recorder's
// clock and contributes software abortMTX edges. Every emit site is behind an
// Enabled guard (enforced by the metricsgate analyzer), so the disabled path
// costs one predictable branch per site.
func (h *Hierarchy) SetConflicts(r *metrics.Recorder) { h.conflicts = r }

// Conflicts returns the installed recorder (possibly nil).
func (h *Hierarchy) Conflicts() *metrics.Recorder { return h.conflicts }

// seqOf widens a hardware VID to its global program-order sequence number
// using the current epoch, so recorded conflict edges stay meaningful across
// VID resets.
func (h *Hierarchy) seqOf(v vid.V) uint64 {
	return uint64(h.cfg.VIDSpace.Join(h.epoch, v))
}

// SpecOccupancy returns the number of cache lines currently in a speculative
// state across every cache. It is a sampling probe, not a fast-path
// operation: the walk visits every way of every cache.
func (h *Hierarchy) SpecOccupancy() uint64 {
	var n uint64
	for _, c := range h.all {
		for _, s := range c.sets {
			for w := range s {
				if s[w].St.Speculative() {
					n++
				}
			}
		}
	}
	return n
}
