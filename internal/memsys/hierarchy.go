package memsys

import (
	"fmt"
	"math/bits"

	"hmtx/internal/metrics"
	"hmtx/internal/obs"
	"hmtx/internal/prof"
	"hmtx/internal/vid"
)

// Hierarchy is the simulated memory system: per-core L1 caches and a shared
// L2 connected by a snoopy bus, backed by main memory, running the HMTX
// coherence protocol (§4).
//
// The hierarchy is exclusive between levels: a line version lives in at most
// one of {some L1, the L2} at a time, except for SpecShared (and Shared)
// copies, which may replicate a version held elsewhere.
type Hierarchy struct {
	cfg       Config
	l1s       []*cache
	l2        *cache
	all       []*cache // every cache: l1s in core order, then l2 (built once in New)
	mem       *memory
	lc        vid.V  // latest committed VID (LC VID register, §5.3)
	epoch     uint64 // VID epoch, advanced by VID Reset (§4.6)
	stats     Stats
	tracker   Tracker
	tracer    *obs.Tracer       // nil when tracing is disabled (obs.go)
	prof      *prof.Collector   // nil when profiling is disabled (prof.go)
	conflicts *metrics.Recorder // nil when conflict recording is disabled (metrics.go)

	// gen is the coherence generation, bumped whenever (epoch, lc) moves or
	// an abort sweep rewrites lines. Each cache set records the generation
	// of its last settle scan, making repeat scans skippable (cache.set).
	gen uint64

	// pres is the snoop filter (DESIGN.md §11): for each line address, a
	// bitmask of the caches (bit i = h.all[i]) that may hold a version of
	// the line. The mask is a conservative superset — a set bit may be
	// stale, but a clear bit guarantees absence — so bus snoops and
	// protocol sweeps visit only caches that can respond instead of
	// broadcasting to all Cores+1 caches. MOESI-San asserts the superset
	// property after every operation (invariant 8, sanitize.go).
	pres map[Addr]presMask

	// Latency histograms, registered by Register (obs.go); nil until then.
	histLoadLat  *obs.Histogram
	histStoreLat *obs.Histogram

	// pendingOverflow records that a speculative line was evicted past
	// the last-level cache during the current operation, forcing an
	// abort (§5.4).
	pendingOverflow bool

	// san is the MOESI-San state (sanitize.go), active when cfg.Sanitize.
	san sanitizer
}

// New builds a hierarchy for the given configuration.
func New(cfg Config) *Hierarchy {
	cfg.validate()
	h := &Hierarchy{cfg: cfg, mem: newMemory(), gen: 1, pres: make(map[Addr]presMask)}
	for i := 0; i < cfg.Cores; i++ {
		h.l1s = append(h.l1s, newCache(fmt.Sprintf("L1.%d", i), i, cfg.L1Size, cfg.L1Ways, h))
	}
	h.l2 = newCache("L2", cfg.Cores, cfg.L2Size, cfg.L2Ways, h)
	h.all = append(append([]*cache{}, h.l1s...), h.l2)
	return h
}

// markPresent records that cache c may hold a version of lineAddr.
func (h *Hierarchy) markPresent(c *cache, lineAddr Addr) {
	m := h.pres[lineAddr]
	m.set(c.id)
	h.pres[lineAddr] = m
}

// clearPresent records that cache c holds no version of lineAddr. It must
// only be called when absence has actually been verified (insert's victim
// rescan, or a sweep that found the set empty for the tag).
func (h *Hierarchy) clearPresent(c *cache, lineAddr Addr) {
	m := h.pres[lineAddr]
	m.clear(c.id)
	if m.empty() {
		delete(h.pres, lineAddr)
	} else {
		h.pres[lineAddr] = m
	}
}

// holders returns the presence mask for lineAddr: the caches a snoop or
// protocol sweep must visit. Caches outside the mask provably hold no
// version of the line, so skipping them is invisible to the protocol.
func (h *Hierarchy) holders(lineAddr Addr) presMask { return h.pres[lineAddr] }

// sweepVersions applies fn to every settled, valid version of lineAddr in
// every cache that may hold one, in deterministic cache order (L1.0 … L2).
// It stops early when fn returns false. Caches whose presence bit proves
// stale (no resident version after settling) have the bit cleared, keeping
// the filter tight without a dedicated invalidation hook at every protocol
// transition.
func (h *Hierarchy) sweepVersions(lineAddr Addr, fn func(*cache, *Line) bool) {
	mask := h.holders(lineAddr)
	for wi := 0; wi < presWords; wi++ {
		word := mask[wi]
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			c := h.all[i]
			s := c.set(lineAddr)
			n := 0
			for w := range s {
				if s[w].St != Invalid && s[w].Tag == lineAddr {
					n++
					if !fn(c, &s[w]) {
						return
					}
				}
			}
			if n == 0 {
				h.clearPresent(c, lineAddr)
			}
		}
	}
}

// SetTracker installs the per-transaction activity tracker (may be nil).
func (h *Hierarchy) SetTracker(t Tracker) { h.tracker = t }

// Stats returns the accumulated event counters.
func (h *Hierarchy) Stats() *Stats { return &h.stats }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }

// LC returns the latest committed VID.
func (h *Hierarchy) LC() vid.V { return h.lc }

// CurrentEpoch returns the current VID epoch.
func (h *Hierarchy) CurrentEpoch() uint64 { return h.epoch }

// Src identifies the level of the hierarchy that served an operation, for
// latency attribution (internal/prof).
type Src uint8

const (
	// SrcL1 is a hit in the requester's own L1 (the default: operations
	// that abort before being served also report SrcL1, matching their
	// L1-lookup latency).
	SrcL1 Src = iota
	// SrcPeer is a transfer from a peer core's L1 over the bus.
	SrcPeer
	// SrcL2 is a hit in the shared L2.
	SrcL2
	// SrcMem is a fill from main memory.
	SrcMem
)

// Result reports the outcome of a memory-system operation.
type Result struct {
	// Lat is the operation latency in cycles.
	Lat int64
	// Conflict indicates the operation detected misspeculation; the
	// caller must abort all uncommitted transactions (§4.4).
	Conflict bool
	// Cause describes the misspeculation for diagnostics.
	Cause string
	// NeedsSLA reports that this speculative load must send a
	// speculative load acknowledgment when its branch resolves (§5.1).
	NeedsSLA bool
	// Src is the hierarchy level that served the operation.
	Src Src
}

// allCaches returns every cache (L1s in core order, then the L2). The slice
// is built once in New and must not be mutated by callers.
func (h *Hierarchy) allCaches() []*cache { return h.all }

// Load performs a load by the given core. a is the VID of the issuing
// transaction (vid.NonSpec for non-speculative execution).
func (h *Hierarchy) Load(core int, addr Addr, a vid.V) (uint64, Result) {
	h.sanBegin(addr)
	val, res := h.load(core, addr, a, true)
	h.sanCheck()
	if h.histLoadLat != nil {
		h.histLoadLat.Observe(uint64(res.Lat))
	}
	return val, res
}

// WrongPathLoad performs a squashed branch-speculative load (§5.1): data
// moves through the caches, but no line is marked with the VID. The marks
// that *would* have been made are shadow-recorded to count the false
// misspeculations SLAs avoid (Table 1).
func (h *Hierarchy) WrongPathLoad(core int, addr Addr, a vid.V) (uint64, Result) {
	h.stats.WrongPathLoads++
	if h.tracer.Enabled(obs.CatSLA) {
		h.tracer.Emit(obs.Event{Kind: obs.KWrongPath, Core: int32(core), Addr: uint64(LineAddr(addr)), VID: uint64(a)})
	}
	h.sanBegin(addr)
	// With SLAs disabled, prior systems mark lines directly from squashed
	// loads (§7.2), risking false misspeculation.
	mark := !h.cfg.SLAEnabled
	val, res := h.load(core, addr, a, mark)
	h.sanCheck()
	return val, res
}

func (h *Hierarchy) load(core int, addr Addr, a vid.V, mark bool) (uint64, Result) {
	la := LineAddr(addr)
	spec := a != vid.NonSpec
	eff := a
	if !spec {
		eff = h.lc
	}
	res := Result{Lat: h.cfg.L1Lat}
	if spec && mark {
		h.stats.SpecLoads++
	}
	l1 := h.l1s[core]

	if ln := l1.findHit(la, eff, false); ln != nil {
		h.stats.L1Hits++
		l1.hits++
		l1.touch(ln)
		val := ln.Word(addr)
		if spec {
			h.localLoadMark(core, l1, ln, la, a, mark, &res)
		}
		h.checkOverflow(&res)
		return val, res
	}

	h.stats.BusMessages++
	res.Lat += h.cfg.BusLat
	if h.tracer.Enabled(obs.CatBus) {
		h.tracer.Emit(obs.Event{Kind: obs.KBusRequest, Core: int32(core), Addr: uint64(la), VID: uint64(a), Note: "load"})
	}

	if owner, oc := h.snoop(core, la, eff); owner != nil {
		if oc == h.l2 {
			res.Lat += h.cfg.L2Lat
			h.stats.L2Hits++
			res.Src = SrcL2
		} else {
			h.stats.PeerTransfers++
			res.Src = SrcPeer
			if h.prof.Enabled() {
				h.prof.LinePeer(la)
			}
		}
		oc.hits++
		val := owner.Word(addr)
		h.remoteLoadMark(core, owner, oc, la, a, eff, mark, &res)
		h.checkOverflow(&res)
		return val, res
	}

	// Missed every cache: fill from main memory.
	res.Lat += h.cfg.L2Lat + h.cfg.MemLat
	h.stats.MemReads++
	res.Src = SrcMem
	data := h.mem.read(la)
	var val uint64
	{
		tmp := Line{Tag: la, Data: data}
		val = tmp.Word(addr)
	}
	nl := Line{Tag: la, St: Exclusive, Epoch: h.epoch, SettledLC: h.lc, Data: data}
	switch {
	case h.anySpecModAbove(la, eff):
		// §5.4: a speculatively modified version exists with a higher
		// modVID, so the non-speculative S-O copy this request should
		// have hit was overflowed to memory. Reconstitute it.
		if !mark {
			// A squashed load leaves no versioned metadata behind.
			h.checkOverflow(&res)
			return val, res
		}
		nl.St = SpecOwned
		nl.Mod = 0
		nl.High = eff + 1
	case spec && mark:
		nl.St = SpecExclusive
		nl.High = a
		h.trackLoad(core, la, &res)
	}
	installed := h.install(l1, nl)
	if spec && !mark {
		h.shadowMark(core, installed, la, a)
	}
	h.checkOverflow(&res)
	return val, res
}

// localLoadMark applies speculative-read marking to a line that hit in the
// requester's own L1.
func (h *Hierarchy) localLoadMark(core int, l1 *cache, ln *Line, la Addr, a vid.V, mark bool, res *Result) {
	if !mark {
		h.shadowMark(core, ln, la, a)
		return
	}
	switch {
	case !ln.St.Speculative():
		// Writable (M or E) access must be gained before the line can
		// be marked (§4.2): upgrade away shared copies if necessary.
		if ln.St == Shared || ln.St == Owned {
			h.stats.BusMessages++
			res.Lat += h.cfg.BusLat
			if h.tracer.Enabled(obs.CatBus) {
				h.tracer.Emit(obs.Event{Kind: obs.KBusRequest, Core: int32(core), Addr: uint64(la), VID: uint64(a), Note: "upgrade"})
			}
			dirty := h.invalidateNonSpecCopies(la, ln)
			if ln.St == Owned || dirty {
				// The line (or a just-invalidated peer copy — a local
				// Shared copy can coexist with a remote Owned one)
				// holds data memory does not: the upgrade must land
				// on Modified or the dirty data would be dropped on
				// a clean eviction. Found by internal/check.
				ln.St = Modified
			} else {
				ln.St = Exclusive
			}
		}
		h.specReadTransition(ln, a)
		if h.cfg.InjectBug != BugStaleCopyOnConvert {
			dropLocalSpecSharedCopies(l1, ln)
		}
		h.trackLoad(core, la, res)
	case ln.St.latest():
		if a > ln.High {
			ln.High = a
		}
		h.trackLoad(core, la, res)
	default: // S-O or S-S: serving a bounded old version; no bump needed
		h.trackLoad(core, la, res)
	}
}

// remoteLoadMark handles a load served by a peer L1 or by the L2.
func (h *Hierarchy) remoteLoadMark(core int, owner *Line, oc *cache, la Addr, a, eff vid.V, mark bool, res *Result) {
	l1 := h.l1s[core]
	spec := a != vid.NonSpec
	if !mark {
		h.shadowMark(core, owner, la, a)
		return
	}
	switch {
	case !owner.St.Speculative():
		if spec {
			// Migrate the line to the requester with writable
			// access, then mark it (§4.2). The transition happens
			// before the install so that a stale S-S(0,·) copy in
			// the requester merges with the arriving owner instead
			// of lingering and double-serving its VID range.
			moved := h.migrate(la, owner, oc)
			if h.cfg.InjectBug == BugDupVersionOnMigrate {
				// Original PR 2 bug: install while still
				// non-speculative (no merge with a resident S-S
				// copy of version 0), then transition in place.
				installed := h.install(l1, moved)
				h.specReadTransition(installed, a)
				h.trackLoad(core, la, res)
				return
			}
			h.specReadTransition(&moved, a)
			h.install(l1, moved)
			h.trackLoad(core, la, res)
			return
		}
		// Classic MOESI read sharing / refill.
		if oc == h.l2 {
			moved := *owner
			owner.St = Invalid
			h.install(l1, moved)
			return
		}
		cp := *owner
		switch owner.St {
		case Modified:
			owner.St = Owned
			cp.St = Shared
		case Exclusive:
			owner.St = Shared
			cp.St = Shared
		default:
			cp.St = Shared
		}
		h.install(l1, cp)
	case owner.St.latest():
		// The owner's highVID tracks the globally highest accessor,
		// so it must be bumped here; the requester keeps an S-S copy
		// bounded at a+1 so that *later* VIDs re-snoop and bump the
		// owner again rather than being served silently.
		if eff > owner.High {
			owner.High = eff
		}
		cp := *owner
		cp.St = SpecShared
		cp.High = eff + 1
		h.install(l1, cp)
		if spec {
			h.trackLoad(core, la, res)
		}
	default: // SpecOwned: bounded old version; copy its exact range
		cp := *owner
		cp.St = SpecShared
		h.install(l1, cp)
		if spec {
			h.trackLoad(core, la, res)
		}
	}
}

// specReadTransition converts a writable non-speculative line into its
// speculatively read counterpart: M -> S-M(0,a), E -> S-E(0,a) (Figure 4).
func (h *Hierarchy) specReadTransition(ln *Line, a vid.V) {
	old := ln.St
	switch ln.St {
	case Modified, Owned:
		ln.St = SpecModified
	case Exclusive, Shared:
		ln.St = SpecExclusive
	default:
		panic(fmt.Sprintf("memsys: specReadTransition on %v", ln))
	}
	ln.Mod = 0
	ln.High = a
	ln.Epoch = h.epoch
	ln.SettledLC = h.lc
	if h.tracer.Enabled(obs.CatCache) {
		h.tracer.Emit(obs.Event{Kind: obs.KStateChange, Core: -1, Addr: uint64(ln.Tag), VID: uint64(a),
			Note: old.String() + "->" + ln.St.String()})
	}
}

// shadowMark records what a squashed wrong-path load would have marked.
func (h *Hierarchy) shadowMark(core int, ln *Line, la Addr, a vid.V) {
	if a == vid.NonSpec {
		return
	}
	if ln.shadow(h.epoch) < a {
		ln.ShadowHigh = a
		ln.ShadowEpoch = h.epoch
	}
	if h.tracker != nil {
		h.tracker.WrongPath(core, la)
	}
}

// trackLoad records the speculative load in the transaction's read set and
// decides whether an SLA must be sent (§5.1): only the first access to a
// line by a given transaction needs one.
func (h *Hierarchy) trackLoad(core int, la Addr, res *Result) {
	if h.tracker == nil {
		return
	}
	if already := h.tracker.SpecTouch(core, la, false); !already {
		res.NeedsSLA = true
		h.stats.SLAsSent++
		if h.tracer.Enabled(obs.CatSLA) {
			h.tracer.Emit(obs.Event{Kind: obs.KSLASent, Core: int32(core), Addr: uint64(la)})
		}
	}
}

// Store performs a store by the given core with transaction VID a.
func (h *Hierarchy) Store(core int, addr Addr, val uint64, a vid.V) Result {
	h.sanBegin(addr)
	la := LineAddr(addr)
	spec := a != vid.NonSpec
	eff := a
	if !spec {
		eff = h.lc
	}
	res := Result{Lat: h.cfg.L1Lat}
	if spec {
		h.stats.SpecStores++
	}

	// Dependence check (§4.3): a store must be the latest access to the
	// line; any version with a higher accessor VID means a later
	// transaction already read or wrote it.
	maxHigh, maxShadow := h.scanHighs(la)
	if maxShadow > eff && maxHigh <= eff {
		// Only a squashed wrong-path load "accessed" the line later:
		// without SLAs this would be a false misspeculation (§5.1).
		h.stats.AvoidedAborts++
		if h.tracker != nil {
			h.tracker.AvoidedAbort(core)
		}
		if h.tracer.Enabled(obs.CatSLA) {
			h.tracer.Emit(obs.Event{Kind: obs.KSLAAvoided, Core: int32(core), Addr: uint64(la), VID: uint64(a)})
		}
		h.clearShadows(la)
	}
	if maxHigh > eff {
		res.Conflict = true
		res.Cause = fmt.Sprintf("store vid %d to line %#x already accessed by vid %d", a, la, maxHigh)
		if h.prof.Enabled() {
			h.prof.LineConflict(la)
		}
		if h.conflicts.Enabled() {
			// The storing transaction is the aborter: its late store
			// invalidates the later transaction that already read or
			// wrote the line (the victim of the rollback).
			h.conflicts.Record(h.seqOf(a), h.seqOf(maxHigh), uint64(la), metrics.EdgeConflict)
		}
		return res
	}

	l1 := h.l1s[core]
	hit := l1.findHit(la, eff, false)
	oc := l1
	if hit != nil && hit.St == SpecShared {
		// An S-S copy cannot serve a store: the write must reach the
		// owning version (whose highVID carries the global accessor
		// mark) over the bus. The stale copy is capped below.
		hit = nil
	}
	if hit != nil {
		h.stats.L1Hits++
		l1.hits++
	} else {
		h.stats.BusMessages++
		res.Lat += h.cfg.BusLat
		if h.tracer.Enabled(obs.CatBus) {
			h.tracer.Emit(obs.Event{Kind: obs.KBusRequest, Core: int32(core), Addr: uint64(la), VID: uint64(a), Note: "store"})
		}
		hit, oc = h.snoop(core, la, eff)
		switch {
		case hit == nil:
		case oc == h.l2:
			res.Lat += h.cfg.L2Lat
			h.stats.L2Hits++
			res.Src = SrcL2
			oc.hits++
		default:
			h.stats.PeerTransfers++
			res.Src = SrcPeer
			if h.prof.Enabled() {
				h.prof.LinePeer(la)
			}
			oc.hits++
		}
	}

	var data [LineSize]byte
	fromMem := hit == nil
	if fromMem {
		res.Lat += h.cfg.L2Lat + h.cfg.MemLat
		h.stats.MemReads++
		res.Src = SrcMem
		data = h.mem.read(la)
	} else {
		data = hit.Data
	}

	if spec && h.tracker != nil {
		h.tracker.SpecTouch(core, la, true)
	}

	switch {
	case !spec:
		// Plain MOESI write: gain Modified in the requester. Lingering
		// S-S copies of the committed version being overwritten must
		// not survive to serve stale data; dropping them is always
		// safe.
		h.dropSpecSharedCopies(la)
		var ln *Line
		switch {
		case fromMem:
			ln = h.install(l1, Line{Tag: la, St: Modified, Epoch: h.epoch, SettledLC: h.lc, Data: data})
		case oc == l1 && (hit.St == Modified || hit.St == Exclusive):
			ln = hit
			ln.St = Modified
			l1.touch(ln)
		default:
			if hit.St.Speculative() {
				panic(fmt.Sprintf("memsys: non-speculative store hit speculative %v despite maxHigh check", hit))
			}
			moved := h.migrate(la, hit, oc)
			moved.St = Modified
			ln = h.install(l1, moved)
		}
		ln.SetWord(addr, val)

	case hit != nil && hit.St.latest() && hit.Mod == a:
		// The transaction re-writes its own version: write in place,
		// migrating it to this core if another thread of the same
		// transaction created it (§5.2 allows thread migration).
		// S-S copies of this version elsewhere are now stale; capping
		// their range at a empties it, so peers re-snoop.
		if h.cfg.InjectBug != BugStaleCopyOnConvert {
			h.capSpecSharedCopies(la, a, a, hit)
		}
		if oc == l1 {
			hit.SetWord(addr, val)
			l1.touch(hit)
		} else {
			moved := *hit
			hit.St = Invalid
			moved.SetWord(addr, val)
			h.install(l1, moved)
		}

	default:
		// Create a new version S-M(a,a); the unmodified copy remains
		// in S-O with highVID = a (§4.1, Figure 4).
		var oldMod vid.V
		switch {
		case fromMem:
			h.install(l1, Line{Tag: la, St: SpecOwned, Mod: 0, High: a, Epoch: h.epoch, SettledLC: h.lc, Data: data})
		case hit.St.Speculative():
			// S-M or S-E; S-O/S-S are excluded by the maxHigh check.
			oldMod = hit.Mod
			hit.St = SpecOwned
			hit.High = a
			h.capSpecSharedCopies(la, oldMod, a, hit)
		default:
			// Non-speculative version: gain writable access, then
			// keep it as the unmodified S-O(0,a) copy.
			if oc == l1 && (hit.St == Modified || hit.St == Exclusive) {
				hit.St = SpecOwned
				hit.Mod = 0
				hit.High = a
				hit.Epoch = h.epoch
				hit.SettledLC = h.lc
				if h.cfg.InjectBug != BugStaleCopyOnConvert {
					dropLocalSpecSharedCopies(l1, hit)
				}
			} else {
				moved := h.migrate(la, hit, oc)
				moved.St = SpecOwned
				moved.Mod = 0
				moved.High = a
				h.install(l1, moved)
			}
		}
		nl := Line{Tag: la, St: SpecModified, Mod: a, High: a, Epoch: h.epoch, SettledLC: h.lc, Data: data}
		nl.SetWord(addr, val)
		h.install(l1, nl)
		h.stats.VersionsCreated++
		if h.tracer.Enabled(obs.CatVersion) {
			h.tracer.Emit(obs.Event{Kind: obs.KVersionCreate, Core: int32(core), Addr: uint64(la), VID: uint64(a)})
		}
	}

	h.checkOverflow(&res)
	h.sanCheck()
	if h.histStoreLat != nil {
		h.histStoreLat.Observe(uint64(res.Lat))
	}
	return res
}

// SLA replays a speculative load acknowledgment (§5.1): it verifies that the
// value originally loaded by the (now branch-committed) load still matches
// the version the VID would access, then marks the line. A mismatch means an
// intervening conflicting store occurred and triggers misspeculation.
func (h *Hierarchy) SLA(core int, addr Addr, a vid.V, expected uint64) Result {
	h.sanBegin(addr)
	val, res := h.load(core, addr, a, true)
	h.sanCheck()
	if val != expected {
		res.Conflict = true
		res.Cause = fmt.Sprintf("SLA mismatch at %#x vid %d: loaded %#x, now %#x", addr, a, expected, val)
		if h.prof.Enabled() {
			h.prof.LineConflict(LineAddr(addr))
		}
		if h.conflicts.Enabled() {
			// The conflicting store already retired, so hardware cannot
			// name the aborter; the victim is the acknowledging load's
			// transaction.
			h.conflicts.Record(0, h.seqOf(a), uint64(LineAddr(addr)), metrics.EdgeSLA)
		}
	}
	return res
}

// Commit atomically group-commits transaction v across all caches by
// advancing the LC VID register (§5.3); individual lines settle lazily.
// Commits must occur consecutively (§4.7).
func (h *Hierarchy) Commit(v vid.V) Result {
	if v != h.lc+1 {
		panic(fmt.Sprintf("memsys: commit of vid %d but LC VID is %d; commits must be consecutive", v, h.lc))
	}
	h.lc = v
	h.gen++ // resident lines may now carry pending commits; force re-scans
	h.stats.Commits++
	h.stats.BusMessages++
	lat := h.cfg.BusLat
	frames := 0
	if h.cfg.EagerCommit {
		// Naive commit processing (§4.4, §7.1): every cache frame must
		// be examined and transitioned on every commit, whether or not
		// it holds speculative state — the cost Vachharajani's
		// proposal pays and lazy commits avoid.
		for _, c := range h.allCaches() {
			frames += c.numSets * c.ways
			c.forEach(func(*Line) {}) // settle everything now
		}
		lat += int64(frames / 8) // 8 frames examined per cycle
	}
	if h.tracer.Enabled(obs.CatCommit) {
		h.tracer.Emit(obs.Event{Kind: obs.KCommit, Core: -1, VID: uint64(v), Arg: uint64(frames)})
	}
	return Result{Lat: lat}
}

// AbortAll flushes every uncommitted transaction from the cache system
// (§4.4). Pending lazy commits are settled first so committed-but-unsettled
// lines survive. The LC VID is unchanged; software restarts the aborted
// transactions reusing the VIDs above LC.
func (h *Hierarchy) AbortAll() Result {
	h.gen++ // the eager sweep rewrites lines under every set's stamp
	h.stats.Aborts++
	h.stats.BusMessages++
	if h.tracer.Enabled(obs.CatCommit) {
		h.tracer.Emit(obs.Event{Kind: obs.KAbortSweep, Core: -1, VID: uint64(h.lc)})
	}
	for _, c := range h.allCaches() {
		c.forEach(func(ln *Line) {
			ln.applyAbort()
			ln.ShadowHigh, ln.ShadowEpoch = 0, 0
		})
	}
	h.pendingOverflow = false
	if h.cfg.Sanitize {
		// The abort repaired any §5.4 overflow tear; the whole
		// hierarchy must be consistent again.
		h.san.muted = false
		if err := h.CheckInvariants(); err != nil {
			panic(err)
		}
	}
	return Result{Lat: h.cfg.BusLat}
}

// VIDReset begins a new VID epoch (§4.6). It is only legal once every
// outstanding transaction has committed; the software allocator enforces
// this. Lines from the previous epoch settle as fully committed on next
// touch.
func (h *Hierarchy) VIDReset() Result {
	h.epoch++
	h.lc = 0
	h.gen++ // every line's epoch is now stale; force re-scans
	h.stats.VIDResets++
	h.stats.BusMessages++
	if h.tracer.Enabled(obs.CatTxn) {
		h.tracer.Emit(obs.Event{Kind: obs.KVIDReset, Core: -1, Arg: h.epoch})
	}
	return Result{Lat: h.cfg.BusLat}
}

// snoop broadcasts a request for lineAddr on the bus and returns the unique
// responding version (S-S copies do not respond, §4.1). For non-speculative
// data several Shared copies may exist; the highest-authority one responds.
// Only caches whose snoop-filter presence bit is set are visited: a clear
// bit proves the cache holds no version of the line, so it could not have
// responded to the broadcast anyway.
//
//hmtx:hotpath
func (h *Hierarchy) snoop(core int, lineAddr Addr, eff vid.V) (*Line, *cache) {
	var best *Line
	var bestCache *cache
	consider := func(ln *Line, c *cache) {
		if best == nil {
			best, bestCache = ln, c
			return
		}
		if best.St.Speculative() || ln.St.Speculative() {
			// Two speculative responders are only legal if they are
			// copies of the same version (same modVID), e.g. after a
			// §5.4 S-O reconstitution; prefer the wider range.
			if best.Mod != ln.Mod || !best.St.Speculative() || !ln.St.Speculative() {
				panic(fmt.Sprintf("memsys: two snoop responders for %#x vid %d: %v and %v", lineAddr, eff, best, ln))
			}
			if ln.High > best.High || stateRank(ln.St) > stateRank(best.St) {
				best, bestCache = ln, c
			}
			return
		}
		if stateRank(ln.St) > stateRank(best.St) {
			best, bestCache = ln, c
		}
	}
	mask := h.holders(lineAddr)
	for wi := 0; wi < presWords; wi++ {
		word := mask[wi]
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			if i == core {
				continue // the requester's own L1 does not respond
			}
			c := h.all[i]
			if ln := c.findHit(lineAddr, eff, true); ln != nil {
				// consider never leaves snoop, so the closure and its frame
				// stay on the stack; hotalloc cannot resolve calls through a
				// function value, hence the waiver.
				consider(ln, c) //hmtx:allocok non-escaping closure called through a local variable
			}
		}
	}
	return best, bestCache
}

// migrate removes every non-speculative copy of lineAddr from the system and
// returns a writable line (M if any copy was dirty, E otherwise) ready to be
// installed in the requester's L1.
func (h *Hierarchy) migrate(lineAddr Addr, owner *Line, oc *cache) Line {
	moved := *owner
	dirty := owner.St == Modified || owner.St == Owned
	h.sweepVersions(lineAddr, func(_ *cache, v *Line) bool {
		if v.St.Speculative() {
			return true
		}
		if v.St == Modified || v.St == Owned {
			dirty = true
		}
		v.St = Invalid
		return true
	})
	if dirty {
		moved.St = Modified
	} else {
		moved.St = Exclusive
	}
	return moved
}

// invalidateNonSpecCopies invalidates every non-speculative copy of lineAddr
// except keep (a local upgrade, §4.2). It reports whether any invalidated
// copy was dirty, in which case the surviving line inherits responsibility
// for the data and must end up in a dirty state.
func (h *Hierarchy) invalidateNonSpecCopies(lineAddr Addr, keep *Line) (dirty bool) {
	h.sweepVersions(lineAddr, func(_ *cache, v *Line) bool {
		if v != keep && !v.St.Speculative() {
			if v.St == Modified || v.St == Owned {
				dirty = true
			}
			v.St = Invalid
		}
		return true
	})
	return dirty
}

// capSpecSharedCopies bounds every S-S copy of the version with modVID
// oldMod at the new store's VID, so stale copies cannot serve VIDs that must
// observe the new version.
func (h *Hierarchy) capSpecSharedCopies(lineAddr Addr, oldMod, a vid.V, except *Line) {
	h.sweepVersions(lineAddr, func(_ *cache, v *Line) bool {
		if v != except && v.St == SpecShared && v.Mod == oldMod && v.High > a {
			v.High = a
		}
		return true
	})
}

// dropLocalSpecSharedCopies invalidates same-cache S-S copies of the version
// keep now owns. An in-place conversion of a non-speculative line into a
// speculative owner of version 0 would otherwise leave a stale local
// S-S(0,·) copy whose serve range overlaps the new owner's, double-serving
// the VIDs both cover. (Dropping an S-S copy is always safe.)
func dropLocalSpecSharedCopies(c *cache, keep *Line) {
	s := c.set(keep.Tag)
	for i := range s {
		v := &s[i]
		if v.St == Invalid || v.Tag != keep.Tag {
			continue
		}
		if v != keep && v.St == SpecShared && v.Mod == keep.Mod {
			v.St = Invalid
		}
	}
}

// dropSpecSharedCopies invalidates every S-S copy of lineAddr.
func (h *Hierarchy) dropSpecSharedCopies(lineAddr Addr) {
	h.sweepVersions(lineAddr, func(_ *cache, v *Line) bool {
		if v.St == SpecShared {
			v.St = Invalid
		}
		return true
	})
}

// scanHighs returns the highest accessor VID of any speculative version of
// lineAddr anywhere in the hierarchy, and the highest wrong-path shadow
// mark. Only latest versions (S-M/S-E) carry true accessor marks: the
// highVID of S-O/S-S lines is a version-range bound (the modVID of the next
// version, or a re-snoop bound on copies), and that next version's own
// highVID subsumes it. This runs on every store, so it iterates the
// presence mask inline rather than through sweepVersions.
func (h *Hierarchy) scanHighs(lineAddr Addr) (maxHigh, maxShadow vid.V) {
	mask := h.holders(lineAddr)
	for wi := 0; wi < presWords; wi++ {
		word := mask[wi]
		for word != 0 {
			i := wi<<6 + bits.TrailingZeros64(word)
			word &= word - 1
			c := h.all[i]
			s := c.set(lineAddr)
			n := 0
			for w := range s {
				v := &s[w]
				if v.St == Invalid || v.Tag != lineAddr {
					continue
				}
				n++
				if v.St.latest() && v.High > maxHigh {
					maxHigh = v.High
				}
				if sh := v.shadow(h.epoch); sh > maxShadow {
					maxShadow = sh
				}
			}
			if n == 0 {
				h.clearPresent(c, lineAddr)
			}
		}
	}
	return maxHigh, maxShadow
}

func (h *Hierarchy) clearShadows(lineAddr Addr) {
	h.sweepVersions(lineAddr, func(_ *cache, v *Line) bool {
		v.ShadowHigh, v.ShadowEpoch = 0, 0
		return true
	})
}

// anySpecModAbove reports whether any cache holds a speculatively modified
// version of lineAddr with modVID above eff — the §5.4 "this address was
// speculatively modified" snoop assertion.
func (h *Hierarchy) anySpecModAbove(lineAddr Addr, eff vid.V) bool {
	found := false
	h.sweepVersions(lineAddr, func(_ *cache, v *Line) bool {
		if v.St.Speculative() && v.Mod > eff {
			found = true
			return false
		}
		return true
	})
	return found
}

// install places ln into cache c, handling the eviction cascade: L1 victims
// that carry state flow to the L2; L2 victims flow to memory or force an
// abort (§5.4). It returns a pointer to the resident line.
func (h *Hierarchy) install(c *cache, ln Line) *Line {
	ln.lru = 0
	// The line may carry a pending lazy commit (e.g. a victim evicted
	// after the transactions that marked it committed): settle it first;
	// a fully committed superseded version simply disappears.
	ln.settle(h.epoch, h.lc, h.cfg.VIDSpace.Max())
	if ln.St == Invalid {
		return nil
	}
	victim, evicted := c.insert(ln)
	if evicted {
		h.placeVictim(victim, c)
	}
	// Locate the resident line (insert may have merged with a copy).
	s := c.set(ln.Tag)
	for i := range s {
		v := &s[i]
		if v.St == Invalid || v.Tag != ln.Tag {
			continue
		}
		if v.St.Speculative() == ln.St.Speculative() && v.Mod == ln.Mod {
			return v
		}
	}
	// Format via a copy: taking &ln here would make the parameter escape
	// and put a Line-sized heap allocation on every install call.
	bad := ln
	panic(fmt.Sprintf("memsys: %s: installed line %v not found", c.name, &bad))
}

// placeVictim handles an evicted line. Clean non-speculative lines and S-S
// copies vanish silently; everything else evicted from an L1 moves to the
// L2. At the last level, dirty non-speculative lines and S-O copies with
// modVID 0 write back to memory (§5.4); any other speculative line forces an
// abort.
func (h *Hierarchy) placeVictim(v Line, from *cache) {
	h.sanTouch(v.Tag)
	if v.St == SpecShared {
		return // a bounded copy; the owning version lives elsewhere
	}
	if from != h.l2 {
		// L1 victims — clean or dirty, speculative or not — move to
		// the L2 (clean-victim caching keeps hot read-only data such
		// as shared tables from round-tripping to memory).
		h.install(h.l2, v)
		return
	}
	switch {
	case v.St == Shared || v.St == Exclusive:
		return // clean, memory holds the same data
	case v.St == Modified || v.St == Owned:
		h.mem.write(v.Tag, v.Data)
		h.stats.MemWrites++
	case v.St == SpecOwned && v.Mod == 0:
		h.mem.write(v.Tag, v.Data)
		h.stats.MemWrites++
		h.stats.SOWritebacks++
		if h.tracer.Enabled(obs.CatVersion) {
			h.tracer.Emit(obs.Event{Kind: obs.KSOWriteback, Core: -1, Addr: uint64(v.Tag), VID: uint64(v.High)})
		}
	default:
		if v.St == SpecModified && v.Mod == 0 {
			// The version was created before any speculative store
			// (modVID 0), so its data is committed — and dirty, or the
			// line would be S-E. The forced abort below erases the
			// speculative read marks but must not lose the data: write
			// it back first, as §5.4 does for non-speculative S-O
			// copies. Found by internal/check.
			h.mem.write(v.Tag, v.Data)
			h.stats.MemWrites++
		}
		h.stats.OverflowAborts++
		h.pendingOverflow = true
		if h.prof.Enabled() {
			h.prof.LineOverflow(v.Tag)
		}
		if h.conflicts.Enabled() {
			// Capacity, not contention: the machine evicted the victim
			// transaction's speculative line past the last-level cache.
			h.conflicts.Record(0, h.seqOf(v.Mod), uint64(v.Tag), metrics.EdgeOverflow)
		}
		if h.tracer.Enabled(obs.CatOverflow) {
			h.tracer.Emit(obs.Event{Kind: obs.KOverflowAbort, Core: -1, Addr: uint64(v.Tag), VID: uint64(v.Mod)})
		}
		// The dropped line tears the version chain until the forced
		// abort repairs it: suppress invariant checks in between.
		h.san.muted = true
	}
}

func (h *Hierarchy) checkOverflow(res *Result) {
	if h.pendingOverflow {
		res.Conflict = true
		res.Cause = "speculative line overflowed the last-level cache (§5.4)"
		h.pendingOverflow = false
	}
}

// PeekWord returns the committed value at addr without affecting timing or
// state. It is a host-side helper for verification and workload setup.
func (h *Hierarchy) PeekWord(addr Addr) uint64 {
	la := LineAddr(addr)
	var best *Line
	bestRank := -1
	for _, c := range h.allCaches() {
		if ln := c.findHit(la, h.lc, false); ln != nil {
			if r := stateRank(ln.St); r > bestRank {
				best, bestRank = ln, r
			}
		}
	}
	if best != nil {
		return best.Word(addr)
	}
	return h.mem.word(addr)
}

// PokeWord writes the committed value at addr directly, bypassing timing.
// It must not be used while the line is speculatively accessed.
func (h *Hierarchy) PokeWord(addr Addr, val uint64) {
	h.sanBegin(addr)
	la := LineAddr(addr)
	h.sweepVersions(la, func(_ *cache, v *Line) bool {
		if v.St.Speculative() {
			panic(fmt.Sprintf("memsys: PokeWord(%#x) on speculatively accessed line %v", addr, v))
		}
		v.SetWord(addr, val)
		return true
	})
	h.mem.setWord(addr, val)
	h.sanCheck()
}

// Versions returns copies of every valid version of the line containing
// addr held by the given cache (0..Cores-1 are the L1s, Cores is the L2),
// for tests and the cachetrace example.
func (h *Hierarchy) Versions(cacheIdx int, addr Addr) []Line {
	c := h.all[cacheIdx]
	la := LineAddr(addr)
	s := c.set(la)
	var out []Line
	for i := range s {
		if s[i].St != Invalid && s[i].Tag == la {
			out = append(out, s[i])
		}
	}
	return out
}

// FlushCommitted writes every dirty non-speculative line back to memory so
// that main memory holds the full committed image. It panics if speculative
// lines remain; call it only after all transactions have committed.
func (h *Hierarchy) FlushCommitted() {
	for _, c := range h.allCaches() {
		c.forEach(func(ln *Line) {
			if ln.St.Speculative() {
				panic(fmt.Sprintf("memsys: FlushCommitted with live speculative line %v", ln))
			}
			if ln.St == Modified || ln.St == Owned {
				h.mem.write(ln.Tag, ln.Data)
				h.stats.MemWrites++
			}
		})
	}
}
