package memsys

import (
	"fmt"

	"hmtx/internal/vid"
)

// cache is one cache level: a set-associative array of Lines. Multiple
// versions of the same line (same Tag, different VID ranges) may occupy
// different ways of the same set (§4.1).
type cache struct {
	name    string
	hier    *Hierarchy
	numSets int
	ways    int
	sets    [][]Line
	hits    uint64 // requests this cache served (per-cache stats registry)
}

func newCache(name string, size, ways int, h *Hierarchy) *cache {
	numSets := size / (ways * LineSize)
	c := &cache{name: name, hier: h, numSets: numSets, ways: ways}
	c.sets = make([][]Line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]Line, ways)
	}
	return c
}

func (c *cache) setIndex(lineAddr Addr) int {
	return int((lineAddr / LineSize) % Addr(c.numSets))
}

// set returns the ways of the set holding lineAddr, with every resident
// version of lineAddr settled against pending lazy commits.
func (c *cache) set(lineAddr Addr) []Line {
	s := c.sets[c.setIndex(lineAddr)]
	h := c.hier
	for i := range s {
		if s[i].St != Invalid && s[i].Tag == lineAddr {
			s[i].settle(h.epoch, h.lc, h.cfg.VIDSpace.Max())
		}
	}
	return s
}

// versions returns pointers to every settled, valid version of lineAddr in
// the cache.
func (c *cache) versions(lineAddr Addr) []*Line {
	s := c.set(lineAddr)
	var out []*Line
	for i := range s {
		if s[i].St != Invalid && s[i].Tag == lineAddr {
			out = append(out, &s[i])
		}
	}
	return out
}

// findHit returns the unique version of lineAddr that the effective request
// VID a hits under the rules of §4.1, or nil. If snoop is true, SpecShared
// copies do not respond (§4.1).
func (c *cache) findHit(lineAddr Addr, a vid.V, snoop bool) *Line {
	var hit *Line
	for _, ln := range c.versions(lineAddr) {
		if snoop && ln.St == SpecShared {
			continue
		}
		ok := false
		switch {
		case !ln.St.Speculative():
			// A non-speculative line coexists with no speculative
			// versions (the first speculative access converts it),
			// so it serves every request.
			ok = true
		case ln.St.latest():
			ok = a >= ln.Mod
		case ln.St.superseded():
			ok = ln.Mod <= a && a < ln.High
		}
		if !ok {
			continue
		}
		if hit != nil {
			panic(fmt.Sprintf("memsys: %s: two versions hit for %#x vid %d: %v and %v",
				c.name, lineAddr, a, hit, ln))
		}
		hit = ln
	}
	return hit
}

// touch updates LRU bookkeeping for ln.
func (c *cache) touch(ln *Line) {
	c.hier.lruClock++
	ln.lru = c.hier.lruClock
}

// victimClass ranks lines for eviction; lower evicts first. Non-speculative
// clean lines can be silently dropped; S-O lines with modVID 0 are
// prioritised among speculative lines because the last-level cache can
// legally overflow them to memory (§5.4).
func victimClass(l *Line) int {
	switch {
	case l.St == Invalid:
		return 0
	case l.St == Shared || l.St == Exclusive:
		return 1
	case l.St == Modified || l.St == Owned:
		return 2
	case l.St == SpecShared:
		return 3 // a copy; dropping it is always safe
	case l.St == SpecOwned && l.Mod == 0:
		return 4
	default:
		return 5
	}
}

// pickVictim chooses a way of the set holding lineAddr to evict. Sibling
// versions of lineAddr itself are eligible but dispreferred: when a hot line
// accumulates many live versions they spill to the next level rather than
// blocking the insert.
func (c *cache) pickVictim(lineAddr Addr) *Line {
	s := c.set(lineAddr)
	var best *Line
	bestClass := 99
	for i := range s {
		ln := &s[i]
		cl := victimClass(ln)
		if ln.St != Invalid && ln.Tag == lineAddr {
			cl += 10 // strongly prefer evicting unrelated lines
		}
		if cl < bestClass || (cl == bestClass && (best == nil || ln.lru < best.lru)) {
			best, bestClass = ln, cl
		}
	}
	return best
}

// insert places ln into the cache, returning the evicted line if a valid
// line had to make room. The caller (the hierarchy) is responsible for
// handling the victim: writing it back, pushing it down a level, or
// aborting (§5.4).
func (c *cache) insert(ln Line) (victim Line, evicted bool) {
	// Merge with an existing copy of the same version: an S-S copy may
	// meet its S-O/S-M original when lines migrate between levels.
	for _, v := range c.versions(ln.Tag) {
		if v.Mod == ln.Mod && v.St.Speculative() == ln.St.Speculative() {
			merged := *v
			if stateRank(ln.St) >= stateRank(v.St) {
				merged = ln
			}
			if ln.High > merged.High && merged.St.latest() {
				merged.High = ln.High
			}
			merged.lru = 0
			*v = merged
			c.touch(v)
			return Line{}, false
		}
	}
	slot := c.pickVictim(ln.Tag)
	if slot.St != Invalid {
		victim, evicted = *slot, true
	}
	*slot = ln
	c.touch(slot)
	return victim, evicted
}

// stateRank orders states by authority for merging duplicate copies of one
// version: an owning state wins over a shared copy.
func stateRank(s State) int {
	switch s {
	case SpecShared, Shared:
		return 0
	case SpecOwned, Owned:
		return 1
	case SpecExclusive, Exclusive:
		return 2
	case SpecModified, Modified:
		return 3
	default:
		return -1
	}
}

// forEach applies fn to every valid line in the cache (settled first).
func (c *cache) forEach(fn func(*Line)) {
	h := c.hier
	for si := range c.sets {
		s := c.sets[si]
		for i := range s {
			if s[i].St == Invalid {
				continue
			}
			s[i].settle(h.epoch, h.lc, h.cfg.VIDSpace.Max())
			if s[i].St != Invalid {
				fn(&s[i])
			}
		}
	}
}

// lineCount returns the number of valid lines (for tests and stats).
func (c *cache) lineCount() int {
	n := 0
	c.forEach(func(*Line) { n++ })
	return n
}
