package memsys

import (
	"fmt"

	"hmtx/internal/vid"
)

// cache is one cache level: a set-associative array of Lines. Multiple
// versions of the same line (same Tag, different VID ranges) may occupy
// different ways of the same set (§4.1).
//
// Per-access work in this file is allocation-free: lookups iterate the ways
// of one set inline instead of materialising version slices, and a per-set
// generation stamp skips the settle scan entirely when nothing committed
// since the set was last scanned for the same tag (DESIGN.md §11).
type cache struct {
	name    string
	id      int // index into the hierarchy's cache array; bit in presence masks
	hier    *Hierarchy
	numSets int
	ways    int
	sets    [][]Line
	hits    uint64 // requests this cache served (per-cache stats registry)

	// setGen/setTag implement the settle-skip fast path: setGen[si] holds
	// the hierarchy coherence generation (bumped on every Commit, VIDReset
	// and AbortAll) at which set si was last settle-scanned, and setTag[si]
	// the line address that scan was for. When both still match, every
	// resident version of that tag is already settled and the scan is a
	// provable no-op — the common case for consecutive L1 hits.
	setGen []uint64
	setTag []Addr

	// lruClock is this cache's private recency counter. Victim selection
	// only ever compares lru stamps of lines within one set of one cache,
	// so a per-cache clock picks the same victims as the former
	// hierarchy-global clock while keeping touch() free of cross-cache
	// shared state (the domain-sharded scheduler lets different cores'
	// L1 fast paths touch concurrently).
	lruClock uint64
}

func newCache(name string, id, size, ways int, h *Hierarchy) *cache {
	numSets := size / (ways * LineSize)
	c := &cache{name: name, id: id, hier: h, numSets: numSets, ways: ways}
	c.sets = make([][]Line, numSets)
	for i := range c.sets {
		c.sets[i] = make([]Line, ways)
	}
	c.setGen = make([]uint64, numSets)
	c.setTag = make([]Addr, numSets)
	return c
}

func (c *cache) setIndex(lineAddr Addr) int {
	return int((lineAddr / LineSize) % Addr(c.numSets))
}

// set returns the ways of the set holding lineAddr, with every resident
// version of lineAddr settled against pending lazy commits. Only versions of
// lineAddr itself are settled — other tags in the set keep their lazy state,
// exactly as before the generation-stamp fast path existed, so victim
// selection is unchanged.
//
//hmtx:hotpath
func (c *cache) set(lineAddr Addr) []Line {
	si := c.setIndex(lineAddr)
	s := c.sets[si]
	h := c.hier
	if c.setGen[si] == h.gen && c.setTag[si] == lineAddr {
		// No commit, VID reset or abort since this set was last scanned
		// for this tag, and every line entering a cache is settled at
		// install time — the scan below would be a pure no-op.
		return s
	}
	for i := range s {
		if s[i].St != Invalid && s[i].Tag == lineAddr {
			s[i].settle(h.epoch, h.lc, h.cfg.VIDSpace.Max())
		}
	}
	c.setGen[si] = h.gen
	c.setTag[si] = lineAddr
	return s
}

// findHit returns the unique version of lineAddr that the effective request
// VID a hits under the rules of §4.1, or nil. If snoop is true, SpecShared
// copies do not respond (§4.1).
//
//hmtx:hotpath
func (c *cache) findHit(lineAddr Addr, a vid.V, snoop bool) *Line {
	s := c.set(lineAddr)
	var hit *Line
	for i := range s {
		ln := &s[i]
		if ln.St == Invalid || ln.Tag != lineAddr {
			continue
		}
		if snoop && ln.St == SpecShared {
			continue
		}
		ok := false
		switch {
		case !ln.St.Speculative():
			// A non-speculative line coexists with no speculative
			// versions (the first speculative access converts it),
			// so it serves every request.
			ok = true
		case ln.St.latest():
			ok = a >= ln.Mod
		case ln.St.superseded():
			ok = ln.Mod <= a && a < ln.High
		}
		if !ok {
			continue
		}
		if hit != nil {
			panic(fmt.Sprintf("memsys: %s: two versions hit for %#x vid %d: %v and %v",
				c.name, lineAddr, a, hit, ln))
		}
		hit = ln
	}
	return hit
}

// touch updates LRU bookkeeping for ln.
//
//hmtx:hotpath
func (c *cache) touch(ln *Line) {
	c.lruClock++
	ln.lru = c.lruClock
}

// victimClass ranks lines for eviction; lower evicts first. Non-speculative
// clean lines can be silently dropped; S-O lines with modVID 0 are
// prioritised among speculative lines because the last-level cache can
// legally overflow them to memory (§5.4).
func victimClass(l *Line) int {
	switch {
	case l.St == Invalid:
		return 0
	case l.St == Shared || l.St == Exclusive:
		return 1
	case l.St == Modified || l.St == Owned:
		return 2
	case l.St == SpecShared:
		return 3 // a copy; dropping it is always safe
	case l.St == SpecOwned && l.Mod == 0:
		return 4
	default:
		return 5
	}
}

// pickVictim chooses a way of the set holding lineAddr to evict. Sibling
// versions of lineAddr itself are eligible but dispreferred: when a hot line
// accumulates many live versions they spill to the next level rather than
// blocking the insert.
func (c *cache) pickVictim(lineAddr Addr) *Line {
	s := c.set(lineAddr)
	var best *Line
	bestClass := 99
	for i := range s {
		ln := &s[i]
		cl := victimClass(ln)
		if ln.St != Invalid && ln.Tag == lineAddr {
			cl += 10 // strongly prefer evicting unrelated lines
		}
		if cl < bestClass || (cl == bestClass && (best == nil || ln.lru < best.lru)) {
			best, bestClass = ln, cl
		}
	}
	return best
}

// insert places ln into the cache, returning the evicted line if a valid
// line had to make room. The caller (the hierarchy) is responsible for
// handling the victim: writing it back, pushing it down a level, or
// aborting (§5.4). insert is the only way a valid line enters a cache, so it
// also maintains the hierarchy's snoop-filter presence bits.
func (c *cache) insert(ln Line) (victim Line, evicted bool) {
	h := c.hier
	// Merge with an existing copy of the same version: an S-S copy may
	// meet its S-O/S-M original when lines migrate between levels.
	s := c.set(ln.Tag)
	for i := range s {
		v := &s[i]
		if v.St == Invalid || v.Tag != ln.Tag {
			continue
		}
		if v.Mod == ln.Mod && v.St.Speculative() == ln.St.Speculative() {
			merged := *v
			if stateRank(ln.St) >= stateRank(v.St) {
				merged = ln
			}
			if ln.High > merged.High && merged.St.latest() {
				merged.High = ln.High
			}
			merged.lru = 0
			*v = merged
			c.touch(v)
			return Line{}, false
		}
	}
	slot := c.pickVictim(ln.Tag)
	if slot.St != Invalid {
		victim, evicted = *slot, true
	}
	*slot = ln
	c.touch(slot)
	h.markPresent(c, ln.Tag)
	if evicted && victim.Tag != ln.Tag {
		// The victim's tag maps to the same set; if no sibling version
		// of it survives there, this cache no longer holds the address.
		still := false
		for i := range s {
			if s[i].St != Invalid && s[i].Tag == victim.Tag {
				still = true
				break
			}
		}
		if !still {
			h.clearPresent(c, victim.Tag)
		}
	}
	return victim, evicted
}

// stateRank orders states by authority for merging duplicate copies of one
// version: an owning state wins over a shared copy.
func stateRank(s State) int {
	switch s {
	case SpecShared, Shared:
		return 0
	case SpecOwned, Owned:
		return 1
	case SpecExclusive, Exclusive:
		return 2
	case SpecModified, Modified:
		return 3
	default:
		return -1
	}
}

// forEach applies fn to every valid line in the cache (settled first).
func (c *cache) forEach(fn func(*Line)) {
	h := c.hier
	for si := range c.sets {
		s := c.sets[si]
		for i := range s {
			if s[i].St == Invalid {
				continue
			}
			s[i].settle(h.epoch, h.lc, h.cfg.VIDSpace.Max())
			if s[i].St != Invalid {
				fn(&s[i])
			}
		}
	}
}

// lineCount returns the number of valid lines (for tests and stats).
func (c *cache) lineCount() int {
	n := 0
	c.forEach(func(*Line) { n++ })
	return n
}
