package memsys

import (
	"testing"

	"hmtx/internal/vid"
)

// TestHotPathZeroAllocs pins the allocation-free contract of DESIGN.md §11:
// the L1-hit access paths — non-speculative load hit, speculative load hit,
// and a speculative store re-writing its own version — must not allocate.
// BenchmarkL1HitLoad reports the same property as allocs/op; this test makes
// it a hard failure instead of a number someone has to read.
func TestHotPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime shadow allocations break AllocsPerRun; contract pinned in non-race runs")
	}
	h := newBenchH(2)
	h.PokeWord(addrA, 7)
	h.Load(0, addrA, vid.NonSpec)
	if n := testing.AllocsPerRun(200, func() {
		h.Load(0, addrA, vid.NonSpec)
	}); n != 0 {
		t.Errorf("non-speculative L1 hit load: %v allocs/op, want 0", n)
	}

	h2 := newBenchH(2)
	h2.PokeWord(addrA, 7)
	h2.Load(0, addrA, 1)
	if n := testing.AllocsPerRun(200, func() {
		h2.Load(0, addrA, 1)
	}); n != 0 {
		t.Errorf("speculative L1 hit load: %v allocs/op, want 0", n)
	}

	h3 := newBenchH(2)
	h3.Store(0, addrA, 1, 1)
	val := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		val++
		h3.Store(0, addrA, val, 1)
	}); n != 0 {
		t.Errorf("speculative store re-write hit: %v allocs/op, want 0", n)
	}

	// The miss paths that route through install must not allocate either:
	// install takes its Line by value, and nothing on the non-panic path may
	// force that 112-byte parameter to escape (a bus-snooped migrating store
	// and the settle-on-access path both call it every iteration).
	h4 := newBenchH(2)
	h4.Store(0, addrA, 1, vid.NonSpec)
	iter := 0
	if n := testing.AllocsPerRun(200, func() {
		iter++
		h4.Store(iter&1, addrA, uint64(iter), vid.NonSpec)
	}); n != 0 {
		t.Errorf("bus-snooped migrating store: %v allocs/op, want 0", n)
	}

	h5 := newBenchH(2)
	v := vid.V(0)
	if n := testing.AllocsPerRun(200, func() {
		v++
		h5.Store(0, addrA, uint64(v), v)
		h5.Commit(v)
		h5.Load(0, addrA, vid.NonSpec)
	}); n != 0 {
		t.Errorf("settle-after-commit access: %v allocs/op, want 0", n)
	}
}

// TestSnoopFilterPresence exercises the snoop-filter maintenance rules
// directly: bits are set when lines enter caches, cleared when the last copy
// leaves, and the conservative-superset invariant (a clear bit proves
// absence) holds across migrations, aborts, and evictions. MOESI-San's
// invariant 8 checks the same property after every operation, so the
// scenarios run with Sanitize on.
func TestSnoopFilterPresence(t *testing.T) {
	h := newTestH(2)
	la := LineAddr(addrA)

	// A load on core 0 pulls the line into L1.0 and the shared L2.
	h.PokeWord(addrA, 7)
	mustLoad(t, h, 0, addrA, vid.NonSpec)
	mask := h.holders(la)
	if !mask.has(h.l1s[0].id) {
		t.Fatalf("after core-0 load: L1.0 presence bit clear (mask %v)", mask)
	}
	if mask.has(h.l1s[1].id) {
		t.Fatalf("after core-0 load: L1.1 presence bit set (mask %v)", mask)
	}

	// A store on core 1 invalidates core 0's copy; the filter may keep the
	// stale bit only until the next sweep proves the cache empty, but the
	// core-1 bit must be set immediately.
	mustStore(t, h, 1, addrA, 9, vid.NonSpec)
	if mask = h.holders(la); !mask.has(h.l1s[1].id) {
		t.Fatalf("after core-1 store: L1.1 presence bit clear (mask %v)", mask)
	}

	// The superset invariant: every valid copy is covered by a set bit.
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after migration: %v", err)
	}

	// Aborting clears speculative state; presence must still cover any
	// surviving committed copies.
	mustStore(t, h, 0, addrA, 11, 1)
	h.AbortAll()
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after abort: %v", err)
	}

	// Walking a sequence of conflicting lines (same set, different tags)
	// forces evictions; bits for evicted addresses must clear once no copy
	// remains anywhere in a cache.
	l1SetBytes := h.cfg.L1Size / h.cfg.L1Ways
	for i := 0; i < h.cfg.L1Ways+4; i++ {
		a := addrA + Addr(i*l1SetBytes)
		mustStore(t, h, 0, a, uint64(i), vid.NonSpec)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants after eviction walk: %v", err)
	}

	// A clear bit must mean the cache truly holds no copy: cross-check the
	// filter against a raw scan for every address we touched.
	for i := 0; i < h.cfg.L1Ways+4; i++ {
		a := LineAddr(addrA + Addr(i*l1SetBytes))
		mask := h.holders(a)
		for _, c := range h.all {
			if mask.has(c.id) {
				continue
			}
			for _, s := range c.sets {
				for w := range s {
					if s[w].St != Invalid && s[w].Tag == a {
						t.Fatalf("%s holds %#x but presence bit clear (mask %v)", c.name, a, mask)
					}
				}
			}
		}
	}
}

// TestSettleSkipStamp verifies the generation-stamp fast path: repeated hits
// on one line skip the settle scan, and any commit, abort or VID reset
// invalidates the stamp so the next access observes the new LC register.
func TestSettleSkipStamp(t *testing.T) {
	h := newTestH(2)
	mustStore(t, h, 0, addrA, 5, 1)
	if v := mustLoad(t, h, 0, addrA, 1); v != 5 {
		t.Fatalf("spec load: got %d, want 5", v)
	}

	// Commit VID 1 lazily; the stamped set must still settle the line on
	// the next access (the commit bumped the generation).
	h.Commit(1)
	if v := mustLoad(t, h, 0, addrA, vid.NonSpec); v != 5 {
		t.Fatalf("post-commit non-spec load: got %d, want 5", v)
	}
	vs := h.Versions(0, addrA)
	for _, ln := range vs {
		if ln.St.Speculative() {
			t.Fatalf("line still speculative after commit+access: %v", ln.St)
		}
	}

	// VID reset must also invalidate stamps: a line settled at the old
	// epoch re-settles as fully committed.
	mustStore(t, h, 0, addrA, 6, 2)
	h.Commit(2)
	h.VIDReset()
	if v := mustLoad(t, h, 0, addrA, vid.NonSpec); v != 6 {
		t.Fatalf("post-reset load: got %d, want 6", v)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

// TestDisabledMetricsZeroAllocs pins the §15 disabled-instrument contract:
// with no conflict recorder installed (the nil instrument), the store paths
// that carry the recording hooks — conflict detection, SLA replay, victim
// placement — must not allocate. The metricsgate analyzer proves the guards
// are present; this test proves the guarded fast path stays free.
func TestDisabledMetricsZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-runtime shadow allocations break AllocsPerRun; contract pinned in non-race runs")
	}
	h := newBenchH(2)
	if h.Conflicts().Enabled() {
		t.Fatal("bench hierarchy unexpectedly has a recorder")
	}
	h.Store(0, addrA, 1, 1)
	val := uint64(0)
	if n := testing.AllocsPerRun(200, func() {
		val++
		h.Store(0, addrA, val, 1)
	}); n != 0 {
		t.Errorf("speculative store with nil recorder: %v allocs/op, want 0", n)
	}
}
