// Package memsys implements the simulated multicore memory hierarchy of the
// HMTX paper: per-core L1 caches and a shared L2 connected by a snoopy bus,
// running a MOESI coherence protocol extended with the HMTX speculative
// states S-M, S-O, S-E and S-S (paper §4).
//
// The hierarchy stores real data (64-byte lines backed by a word-addressable
// main memory), enforces the versioned hit/miss rules of §4.1, detects
// dependence violations per §4.3, and implements lazy commits (§5.3),
// speculative-load acknowledgments (§5.1), VID overflow/reset (§4.6) and
// speculative overflow of non-speculative S-O copies to memory (§5.4).
package memsys

import "hmtx/internal/vid"

// LineSize is the cache line size in bytes (Table 2).
const LineSize = 64

// WordSize is the access granularity of simulated loads and stores.
const WordSize = 8

// Addr is a simulated physical address.
type Addr = uint64

// Config describes the simulated hardware, defaulting to Table 2 of the
// paper.
type Config struct {
	// Cores is the number of cores, each with a private L1 data cache.
	Cores int

	// L1Size and L1Ways configure each private L1 data cache.
	L1Size, L1Ways int
	// L2Size and L2Ways configure the shared L2 cache.
	L2Size, L2Ways int

	// L1Lat, L2Lat and MemLat are access latencies in cycles (Table 2).
	L1Lat, L2Lat, MemLat int64
	// BusLat is the latency of a cache-to-cache transfer or broadcast on
	// the shared snoopy bus.
	BusLat int64

	// VIDSpace is the hardware VID width (6 bits in the paper, §4.5).
	VIDSpace vid.Space

	// SLAEnabled selects whether speculative load acknowledgments guard
	// against branch-misprediction-induced false misspeculation (§5.1).
	// When disabled, wrong-path loads mark cache lines directly, as in
	// all prior systems (§7.2).
	SLAEnabled bool

	// Sanitize enables MOESI-San, the global-invariant checker of
	// sanitize.go: every protocol transaction is followed by an assertion
	// pass over the lines it touched, and aborts verify the whole
	// hierarchy. Checking is observational (it cannot change timing or
	// eviction behaviour) but costs host time; it is off by default and
	// meant for tests and the -sanitize flag of cmd/hmtxsim.
	Sanitize bool

	// EagerCommit disables the lazy commit scheme of §5.3: every commit
	// sweeps all caches and transitions each speculative line
	// immediately, paying cycles proportional to the resident lines —
	// the naive scheme of §4.4 (and of Vachharajani's proposal, §7.1).
	// It exists for the lazy-vs-eager ablation.
	EagerCommit bool

	// InjectBug deliberately re-introduces a fixed protocol bug, selected
	// by one of the Bug* constants below. It exists to validate the model
	// checker (internal/check): a correct checker must find a
	// counterexample for every injectable bug, and the checker's own test
	// suite asserts exactly that. Empty means no injection.
	InjectBug string
}

// Injectable protocol bugs: the two latent transition-table bugs found and
// fixed while building MOESI-San. Each names the fix it disables.
const (
	// BugDupVersionOnMigrate re-breaks remote speculative loads served by
	// a non-speculative owner: the migrated line is installed *before* its
	// speculative-read transition, so a stale same-version S-S copy in the
	// requester's L1 no longer merges with it and lingers as a duplicate
	// that can double-serve its VID range.
	BugDupVersionOnMigrate = "dup-version-on-migrate"

	// BugStaleCopyOnConvert re-breaks in-place conversions of a line the
	// requester's L1 already holds (speculative read upgrade, new-version
	// store, same-version re-store): stale local S-S copies of the
	// converted version are left resident instead of being dropped or
	// range-capped, so they can serve VIDs that must observe newer data.
	BugStaleCopyOnConvert = "stale-sscopy-on-convert"
)

// DefaultConfig returns the architectural configuration of Table 2:
// 4 cores, 64KB 8-way L1s (2-cycle), a 32MB 32-way shared L2 (40-cycle),
// 200-cycle memory, 64B lines, and 6-bit VIDs.
func DefaultConfig() Config {
	return Config{
		Cores:      4,
		L1Size:     64 << 10,
		L1Ways:     8,
		L2Size:     32 << 20,
		L2Ways:     32,
		L1Lat:      2,
		L2Lat:      40,
		MemLat:     200,
		BusLat:     40,
		VIDSpace:   vid.DefaultSpace,
		SLAEnabled: true,
	}
}

// Validate panics if the configuration is internally inconsistent; it is
// called by New.
func (c Config) validate() {
	switch {
	case c.Cores <= 0:
		panic("memsys: Cores must be positive")
	case c.Cores > 255:
		// The snoop filter keeps one presence bit per cache (Cores L1s
		// plus the L2) in a presMask, sized for 256 caches; the engine's
		// deterministic event keys also reserve 8 bits for the core id.
		panic("memsys: at most 255 cores supported")
	case c.L1Size <= 0 || c.L1Ways <= 0 || c.L1Size%(c.L1Ways*LineSize) != 0:
		panic("memsys: invalid L1 geometry")
	case c.L2Size <= 0 || c.L2Ways <= 0 || c.L2Size%(c.L2Ways*LineSize) != 0:
		panic("memsys: invalid L2 geometry")
	case c.VIDSpace.Bits == 0 || c.VIDSpace.Bits > 8:
		panic("memsys: VID width must be in 1..8")
	case c.InjectBug != "" && c.InjectBug != BugDupVersionOnMigrate && c.InjectBug != BugStaleCopyOnConvert:
		panic("memsys: unknown InjectBug " + c.InjectBug)
	}
}

// Quantum returns the conservative synchronisation quantum for domain-sharded
// simulation: the minimum latency of any cross-core interaction. Every path by
// which one core's activity becomes visible to another goes through the shared
// bus or the L2 (cache-to-cache transfers, snoops, broadcasts), so no core can
// observe an event issued by a peer fewer than Quantum cycles earlier. The
// bound is computed from the configuration, never hard-coded.
func (c Config) Quantum() int64 {
	q := c.BusLat
	if c.L2Lat < q {
		q = c.L2Lat
	}
	return q
}

// LineAddr returns the line-aligned address containing addr.
func LineAddr(addr Addr) Addr { return addr &^ (LineSize - 1) }
