package memsys

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"hmtx/internal/vid"
)

// exactTestCfg builds a deliberately tiny hierarchy so random stimuli evict
// constantly and every state class (speculative versions, lazy commits,
// shadow marks, stale presence bits) shows up in the encoding.
func exactTestCfg(cores int) Config {
	cfg := DefaultConfig()
	cfg.Cores = cores
	cfg.L1Size = 4 * LineSize
	cfg.L1Ways = 2
	cfg.L2Size = 16 * LineSize
	cfg.L2Ways = 4
	return cfg
}

// driveRandom applies n random stimuli (loads, stores, wrong-path loads,
// forced evictions, commits) to h, tracking the commit frontier so the
// stimulus stream is legal. Conflicts and overflows are resolved with
// AbortAll, exactly as the engine would.
func driveRandom(h *Hierarchy, rng *rand.Rand, n int, lc *vid.V) {
	cores := h.Config().Cores
	pool := make([]Addr, 16)
	for i := range pool {
		pool[i] = Addr(0x4000 + (i%8)*LineSize + (i/8)*WordSize)
	}
	for op := 0; op < n; op++ {
		core := rng.Intn(cores)
		addr := pool[rng.Intn(len(pool))]
		v := *lc + vid.V(1+rng.Intn(3)) // one of the next few uncommitted VIDs
		var res Result
		switch rng.Intn(10) {
		case 0, 1, 2:
			_, res = h.Load(core, addr, v)
		case 3, 4, 5:
			res = h.Store(core, addr, rng.Uint64(), v)
		case 6:
			_, res = h.WrongPathLoad(core, addr, v)
		case 7:
			_, res = h.Evict(rng.Intn(cores+1), addr)
		case 8:
			_, res = h.Load(core, addr, vid.NonSpec)
		default:
			if *lc < h.Config().VIDSpace.Max()-4 {
				*lc++
				res = h.Commit(*lc)
			}
		}
		if res.Conflict {
			h.AbortAll()
		}
	}
}

// TestExactRoundTrip is the core checkpoint property: after any stimulus
// prefix, AppendExact → RestoreExact reproduces a hierarchy that (1) yields
// the identical exact encoding, (2) has the identical canonical fingerprint,
// and (3) behaves byte-identically — same stats, same canonical encoding,
// same exact encoding — as the original under any shared stimulus suffix.
func TestExactRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := exactTestCfg(2 + rng.Intn(3))
		h := New(cfg)
		lc := vid.V(0)
		driveRandom(h, rng, 40+rng.Intn(80), &lc)

		enc := h.AppendExact(nil)
		h2 := New(cfg)
		if err := h2.RestoreExact(enc); err != nil {
			t.Logf("seed %d: restore: %v", seed, err)
			return false
		}
		if !bytes.Equal(h2.AppendExact(nil), enc) {
			t.Logf("seed %d: re-encoding differs", seed)
			return false
		}
		addrs := h.Addrs()
		if h.Fingerprint(addrs) != h2.Fingerprint(addrs) {
			t.Logf("seed %d: canonical fingerprint differs after restore", seed)
			return false
		}

		// Replay an identical suffix on both and require exact agreement.
		suffix := rng.Int63()
		lc2 := lc
		driveRandom(h, rand.New(rand.NewSource(suffix)), 60, &lc)
		driveRandom(h2, rand.New(rand.NewSource(suffix)), 60, &lc2)
		if h.stats != h2.stats {
			t.Logf("seed %d: stats diverged after replay:\n%+v\n%+v", seed, h.stats, h2.stats)
			return false
		}
		if !bytes.Equal(h.AppendExact(nil), h2.AppendExact(nil)) {
			t.Logf("seed %d: exact state diverged after replay", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(11))}); err != nil {
		t.Fatal(err)
	}
}

// TestExactRestoreIntoObservedHierarchy checks that a restore composes with
// attached observers: the restored hierarchy keeps the caller's tracker slot
// and MOESI-San finds no fault with the restored state.
func TestExactRestoreSanitized(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := exactTestCfg(4)
	h := New(cfg)
	lc := vid.V(0)
	driveRandom(h, rng, 120, &lc)
	enc := h.AppendExact(nil)

	cfg2 := cfg
	cfg2.Sanitize = true
	h2 := New(cfg2)
	if err := h2.RestoreExact(enc); err != nil {
		t.Fatal(err)
	}
	if err := h2.CheckInvariants(); err != nil {
		t.Fatalf("restored state violates MOESI-San invariants: %v", err)
	}
}

func TestExactRestoreErrors(t *testing.T) {
	h := New(exactTestCfg(2))
	enc := h.AppendExact(nil)

	if err := New(exactTestCfg(2)).RestoreExact(enc[:len(enc)-3]); err == nil {
		t.Error("truncated encoding: want error")
	}
	if err := New(exactTestCfg(2)).RestoreExact(append([]byte(nil), append(enc, 0)...)); err == nil {
		t.Error("trailing bytes: want error")
	}
	if err := New(exactTestCfg(3)).RestoreExact(enc); err == nil {
		t.Error("core-count mismatch: want geometry error")
	}
	small := exactTestCfg(2)
	small.L1Size = 2 * LineSize
	if err := New(small).RestoreExact(enc); err == nil {
		t.Error("L1 geometry mismatch: want geometry error")
	}
	if err := New(exactTestCfg(2)).RestoreExact([]byte("not a checkpoint")); err == nil {
		t.Error("bad magic: want error")
	}
}
