// Package lintdoc defines the versioned JSON document hmtxlint emits with
// -json, in the same style as the metrics document schemas
// ("hmtx-series/v1", ...), so hmtxreport diff and the lint baseline differ
// can treat lint output like any other versioned artifact.
package lintdoc

// Schema is the document identifier carried in the "schema" field.
const Schema = "hmtx-lint/v1"

// Doc is one lint run: which analyzer revisions ran, and what they found.
type Doc struct {
	Schema    string     `json:"schema"`
	Analyzers []Analyzer `json:"analyzers"`
	Findings  []Finding  `json:"findings"`
}

// Analyzer names one rule and its revision. A version bump marks a change in
// what the rule means, so a diff can tell rule drift from code drift.
type Analyzer struct {
	Name    string `json:"name"`
	Version string `json:"version"`
}

// A Finding is one diagnostic in the stable external format. File paths are
// relative to the working directory when possible so baselines survive
// checkouts at different absolute paths. Findings are sorted by file, line,
// column, analyzer, message.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
